"""OpenFlow layer — the slowest datapath layer (paper Figure 2a).

Implemented with tuple space search like the MegaFlow layer, but with
OpenFlow semantics: *every* tuple must be searched and the highest-priority
match returned (overlapping rules with priorities).  A miss here punts to
the controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.memory import AddressAllocator
from ..sim.trace import Tracer, NULL_TRACER
from .flow import FiveTuple
from .rules import Rule
from .tuple_space import TupleSpaceSearch


@dataclass
class OpenFlowStats:
    classifications: int = 0
    hits: int = 0
    controller_punts: int = 0


class OpenFlowLayer:
    """Priority-correct classification over all tuples."""

    def __init__(self, allocator: Optional[AddressAllocator] = None,
                 tracer: Tracer = NULL_TRACER,
                 tuple_capacity: int = 4096,
                 name: str = "openflow") -> None:
        self.tss = TupleSpaceSearch(
            allocator=allocator, tracer=tracer,
            tuple_capacity=tuple_capacity, name=name)
        self.stats = OpenFlowStats()

    @property
    def num_tuples(self) -> int:
        return self.tss.num_tuples

    def __len__(self) -> int:
        return len(self.tss)

    def install(self, rule: Rule) -> bool:
        return self.tss.install(rule)

    def remove(self, rule: Rule) -> bool:
        return self.tss.remove(rule)

    def classify(self, flow: FiveTuple) -> Optional[Rule]:
        """Search all tuples; return the highest-priority match.

        Ties break on the lower rule_id (first-installed wins), matching
        OVS's deterministic resolution.
        """
        self.stats.classifications += 1
        matches = self.tss.classify_all(flow)
        if not matches:
            self.stats.controller_punts += 1
            return None
        self.stats.hits += 1
        return max(matches, key=lambda rule: (rule.priority, -rule.rule_id))

    def tuples_searched_per_classification(self) -> int:
        """OpenFlow always searches every tuple."""
        return self.tss.num_tuples
