"""Decision-tree packet classification (EffiCuts-style) — the paper's §4.8
general-applicability extension.

HiCuts/EffiCuts classifiers cut the rule space into a decision tree whose
leaves hold small rule lists; classification walks root→leaf comparing the
packet's fields against node boundaries.  The paper argues HALO generalises
beyond hash tables: "EffiCuts uses a decision tree for packet
classification ... HALO accelerator can be used to conduct the comparison
with the nodes in the tree", because a tree walk is the same shape of
work — a dependent chain of fetch-and-compare steps over LLC-resident
nodes.

This module provides:

* :class:`DecisionTreeClassifier` — a real (functional) tree built from
  :class:`~repro.classifier.rules.Rule` sets by recursive equal-size cuts,
  with every node materialised at a cache-line address;
* software-path cost: a traced root→leaf walk replayed on a core;
* HALO-path cost: the same walk executed CHA-side (each node fetch at
  near-cache latency, comparisons in the accelerator's comparators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

from ..sim.memory import AddressAllocator
from ..sim.trace import InstructionMix, Tracer, NULL_TRACER
from .flow import FiveTuple
from .rules import Rule

#: Dimensions a node may cut: (accessor, field width in bits).
DIMENSIONS = (
    ("src_ip", 32),
    ("dst_ip", 32),
    ("src_port", 16),
    ("dst_port", 16),
)

#: Rules per leaf before we stop cutting (EffiCuts' binth).
DEFAULT_LEAF_RULES = 4
#: Cuts per internal node (power of two).
DEFAULT_CUTS = 4
MAX_DEPTH = 12

#: Instruction cost of one software node visit (bounds compare + child
#: index arithmetic + load).
NODE_VISIT_MIX = InstructionMix(loads=6, stores=1, arithmetic=8, others=7)
#: Instruction cost of one leaf rule check.
LEAF_RULE_MIX = InstructionMix(loads=8, stores=1, arithmetic=10, others=8)


def _field_range(rule: Rule, accessor: str, width: int) -> Tuple[int, int]:
    """The [lo, hi] interval a rule covers on one dimension."""
    mask_attr = {"src_ip": "src_ip_mask", "dst_ip": "dst_ip_mask",
                 "src_port": "src_port_mask",
                 "dst_port": "dst_port_mask"}[accessor]
    mask = getattr(rule.mask, mask_attr)
    value = getattr(rule.match, accessor)
    full = (1 << width) - 1
    # Prefix-style masks: wildcard bits are the zero bits of the mask.
    lo = value & mask
    hi = lo | (full & ~mask)
    return lo, hi


@dataclass
class TreeNode:
    """One decision-tree node occupying a cache line."""

    addr: int
    depth: int
    dimension: Optional[int] = None        # index into DIMENSIONS; None=leaf
    cut_lo: int = 0
    cut_hi: int = 0
    children: List["TreeNode"] = field(default_factory=list)
    rules: List[Rule] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.dimension is None


@dataclass
class TreeStats:
    classifications: int = 0
    hits: int = 0
    nodes_visited: int = 0
    leaf_rules_checked: int = 0


class DecisionTreeClassifier:
    """An equal-size-cut decision tree over a rule set."""

    def __init__(self, rules: Sequence[Rule],
                 leaf_rules: int = DEFAULT_LEAF_RULES,
                 cuts: int = DEFAULT_CUTS,
                 allocator: Optional[AddressAllocator] = None,
                 tracer: Tracer = NULL_TRACER,
                 name: str = "dtree") -> None:
        if cuts < 2 or cuts & (cuts - 1):
            raise ValueError("cuts must be a power of two >= 2")
        self.rules = list(rules)
        self.leaf_rules = leaf_rules
        self.cuts = cuts
        self.tracer = tracer
        self._allocator = allocator or AddressAllocator(1 << 34)
        # Pre-allocate a node region; nodes are bump-allocated lines.
        self._region = self._allocator.alloc(1 << 22, f"{name}.nodes")
        self._next_node = 0
        self.stats = TreeStats()
        bounds = [(0, (1 << width) - 1) for _name, width in DIMENSIONS]
        self.root = self._build(self.rules, bounds, depth=0)
        self.num_nodes = self._next_node

    # -- construction -----------------------------------------------------------
    def _alloc_node(self, depth: int) -> TreeNode:
        addr = self._region.base + self._next_node * 64
        if addr >= self._region.end:
            raise MemoryError("decision tree node region exhausted")
        self._next_node += 1
        return TreeNode(addr=addr, depth=depth)

    def _build(self, rules: List[Rule], bounds: List[Tuple[int, int]],
               depth: int) -> TreeNode:
        node = self._alloc_node(depth)
        if len(rules) <= self.leaf_rules or depth >= MAX_DEPTH:
            node.rules = sorted(rules, key=lambda r: -r.priority)
            return node
        dimension = self._pick_dimension(rules, bounds)
        if dimension is None:
            node.rules = sorted(rules, key=lambda r: -r.priority)
            return node
        accessor, width = DIMENSIONS[dimension]
        lo, hi = bounds[dimension]
        node.dimension = dimension
        node.cut_lo, node.cut_hi = lo, hi
        span = (hi - lo + 1) // self.cuts
        for cut in range(self.cuts):
            child_lo = lo + cut * span
            child_hi = hi if cut == self.cuts - 1 else child_lo + span - 1
            child_rules = [
                rule for rule in rules
                if _overlaps(_field_range(rule, accessor, width),
                             (child_lo, child_hi))]
            child_bounds = list(bounds)
            child_bounds[dimension] = (child_lo, child_hi)
            # Recurse even when one child inherits every rule: its bounds
            # are narrower, so deeper cuts will discriminate (termination is
            # guaranteed by the shrinking bounds and MAX_DEPTH).
            child = self._build(child_rules, child_bounds, depth + 1)
            node.children.append(child)
        return node

    def _pick_dimension(self, rules: List[Rule],
                        bounds: List[Tuple[int, int]]) -> Optional[int]:
        """The dimension whose cuts best separate the rules."""
        best, best_score = None, len(rules) * self.cuts
        for dimension, (accessor, width) in enumerate(DIMENSIONS):
            lo, hi = bounds[dimension]
            if hi - lo + 1 < self.cuts:
                continue
            span = (hi - lo + 1) // self.cuts
            total = 0
            for cut in range(self.cuts):
                child_lo = lo + cut * span
                child_hi = hi if cut == self.cuts - 1 else child_lo + span - 1
                total += sum(
                    1 for rule in rules
                    if _overlaps(_field_range(rule, accessor, width),
                                 (child_lo, child_hi)))
            if total < best_score:
                best, best_score = dimension, total
        if best is not None and best_score >= len(rules) * self.cuts:
            return None
        return best

    # -- classification ------------------------------------------------------------
    def walk_path(self, flow: FiveTuple) -> List[TreeNode]:
        """The root→leaf node sequence this flow traverses."""
        path = [self.root]
        node = self.root
        while not node.is_leaf:
            accessor, _width = DIMENSIONS[node.dimension]
            value = getattr(flow, accessor)
            lo, hi = node.cut_lo, node.cut_hi
            span = (hi - lo + 1) // self.cuts
            index = min((value - lo) // span if span else 0, self.cuts - 1)
            index = max(0, index)
            node = node.children[index]
            path.append(node)
        return path

    def classify(self, flow: FiveTuple) -> Optional[Rule]:
        """Highest-priority matching rule, with memory tracing."""
        self.stats.classifications += 1
        path = self.walk_path(flow)
        tracer = self.tracer
        mix_loads = mix_stores = mix_arith = mix_other = 0
        for hop, node in enumerate(path):
            self.stats.nodes_visited += 1
            if tracer.enabled:
                if hop:
                    tracer.barrier()
                tracer.load(node.addr, 64)
            mix_loads += NODE_VISIT_MIX.loads
            mix_stores += NODE_VISIT_MIX.stores
            mix_arith += NODE_VISIT_MIX.arithmetic
            mix_other += NODE_VISIT_MIX.others
        leaf = path[-1]
        best: Optional[Rule] = None
        for rule in leaf.rules:
            self.stats.leaf_rules_checked += 1
            mix_loads += LEAF_RULE_MIX.loads
            mix_stores += LEAF_RULE_MIX.stores
            mix_arith += LEAF_RULE_MIX.arithmetic
            mix_other += LEAF_RULE_MIX.others
            if rule.matches(flow):
                best = rule
                break   # leaf rules are priority-sorted
        if tracer.enabled:
            tracer.count(loads=mix_loads, stores=mix_stores,
                         arithmetic=mix_arith, others=mix_other)
        if best is not None:
            self.stats.hits += 1
        return best

    # -- HALO-accelerated walk (paper §4.8) -------------------------------------------
    def halo_walk(self, system, flow: FiveTuple, core_id: int = 0):
        """Walk the tree with near-cache node fetches; returns an Episode.

        Models the §4.8 proposal: the accelerator fetches each node from
        the LLC slice that homes it and runs the boundary comparison in its
        comparators, following the child pointer — the same dependent
        fetch-compare chain as a bucket scan.
        """
        path = self.walk_path(flow)
        leaf = path[-1]
        latency = system.hierarchy.latency
        halo = system.machine.halo

        def program() -> Generator:
            engine = system.engine
            yield engine.timeout(1 + latency.dispatch)   # issue + dispatch
            slice_id = system.hierarchy.interconnect.slice_of_table(
                self.root.addr)
            for node in path:
                access = system.hierarchy.cha_access(slice_id, node.addr)
                yield engine.timeout(access.latency + halo.compare_latency)
            for rule in leaf.rules:
                yield engine.timeout(halo.compare_latency)
                if rule.matches(flow):
                    break
            yield engine.timeout(latency.result_return)
            return self.classify_functional(flow)

        return system.run_program(program(), name="halo_tree_walk")

    def classify_functional(self, flow: FiveTuple) -> Optional[Rule]:
        """Classification result with no tracing/stats (pure)."""
        leaf = self.walk_path(flow)[-1]
        for rule in leaf.rules:
            if rule.matches(flow):
                return rule
        return None

    def depth(self) -> int:
        def _depth(node: TreeNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(_depth(child) for child in node.children)
        return _depth(self.root)


def _overlaps(first: Tuple[int, int], second: Tuple[int, int]) -> bool:
    return first[0] <= second[1] and second[0] <= first[1]
