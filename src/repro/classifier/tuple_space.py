"""Tuple space search — the MegaFlow layer (Srinivasan et al., paper §2.2).

Rules are grouped by wildcard mask; each group ("tuple") is one hash table
keyed by the masked header fields.  Classification masks the packet's
5-tuple with each tuple's mask and looks the result up in that tuple's
table.  The MegaFlow layer returns on the *first* match (tuples are
unordered caches of disjoint megaflows); the OpenFlow layer — built on the
same structure — must search all tuples and take the highest priority.

When used as a megaflow *cache* an optional
:class:`~repro.classifier.cache_policy.CachePolicy` governs admission and
eviction per tuple: a failed insert (tuple at capacity) evicts a policy-
chosen victim from the new key's candidate buckets and retries once.
With ``policy=None`` (the default, and always for the OpenFlow rule set)
installs behave exactly as before: best-effort, no eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..hashtable.cuckoo import CuckooHashTable
from ..obs.metrics import MetricsRegistry, NULL_COUNTER
from ..sim.memory import AddressAllocator
from ..sim.trace import Tracer, NULL_TRACER
from .cache_policy import CachePolicy
from .flow import FiveTuple, FlowMask
from .rules import Rule

DEFAULT_TUPLE_CAPACITY = 1024


@dataclass
class TupleSpaceStats:
    classifications: int = 0
    hits: int = 0
    tuple_lookups: int = 0
    evictions: int = 0
    admission_rejects: int = 0

    @property
    def lookups_per_classification(self) -> float:
        if not self.classifications:
            return 0.0
        return self.tuple_lookups / self.classifications


class TupleEntry:
    """One tuple: a mask and its hash table of rules."""

    __slots__ = ("mask", "table")

    def __init__(self, mask: FlowMask, table: CuckooHashTable) -> None:
        self.mask = mask
        self.table = table

    def lookup(self, flow: FiveTuple) -> Optional[Rule]:
        return self.table.lookup(self.mask.key_of(flow))

    def __len__(self) -> int:
        return len(self.table)


class TupleSpaceSearch:
    """The tuple-space classifier."""

    def __init__(self, allocator: Optional[AddressAllocator] = None,
                 tracer: Tracer = NULL_TRACER,
                 tuple_capacity: int = DEFAULT_TUPLE_CAPACITY,
                 name: str = "tss",
                 policy: Optional[CachePolicy] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.allocator = allocator
        self.tracer = tracer
        self.tuple_capacity = tuple_capacity
        self.name = name
        self.policy = policy
        self._tuples: Dict[FlowMask, TupleEntry] = {}
        self._order: List[FlowMask] = []   # insertion order = search order
        self.stats = TupleSpaceStats()
        if metrics is None:
            self._m_evictions = NULL_COUNTER
            self._m_rejects = NULL_COUNTER
        else:
            self._m_evictions = metrics.counter(f"{name}.evictions")
            self._m_rejects = metrics.counter(f"{name}.admission_rejects")

    # -- structure ---------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        return len(self._tuples)

    def tuples(self) -> Iterator[TupleEntry]:
        for mask in self._order:
            yield self._tuples[mask]

    def tuple_for(self, mask: FlowMask) -> TupleEntry:
        entry = self._tuples.get(mask)
        if entry is None:
            table = CuckooHashTable(
                self.tuple_capacity, key_bytes=16,
                allocator=self.allocator, tracer=self.tracer,
                name=f"{self.name}.tuple{len(self._order)}")
            entry = TupleEntry(mask, table)
            self._tuples[mask] = entry
            self._order.append(mask)
        return entry

    # -- rule management --------------------------------------------------------
    def install(self, rule: Rule) -> bool:
        """Add a rule; creates the tuple for its mask on first use.

        With a cache policy attached, admission is consulted for new
        keys, and a full tuple evicts one policy-chosen victim from the
        key's candidate buckets before retrying the insert once.
        """
        entry = self.tuple_for(rule.mask)
        if self.policy is None:
            return entry.table.insert(rule.key, rule)
        key = rule.key
        plan = entry.table.probe(key)
        if plan.found:
            entry.table.insert(key, rule)   # refresh the cached megaflow
            self.policy.on_hit(key)
            return True
        if not self.policy.admit(key):
            self.stats.admission_rejects += 1
            self._m_rejects.inc()
            return False
        if entry.table.insert(key, rule):
            self.policy.on_install(key)
            return True
        victim = self.policy.victim(
            entry.table, (plan.primary_index, plan.secondary_index))
        if victim is None:
            return False
        entry.table.delete(victim)
        self.policy.on_evict(victim)
        self.stats.evictions += 1
        self._m_evictions.inc()
        if entry.table.insert(key, rule):
            self.policy.on_install(key)
            return True
        return False

    def remove(self, rule: Rule) -> bool:
        entry = self._tuples.get(rule.mask)
        if entry is None:
            return False
        deleted = entry.table.delete(rule.key)
        if deleted and self.policy is not None:
            self.policy.on_evict(rule.key)
        return deleted

    def __len__(self) -> int:
        return sum(len(entry) for entry in self._tuples.values())

    # -- classification -----------------------------------------------------------
    def classify(self, flow: FiveTuple) -> Tuple[Optional[Rule], int]:
        """MegaFlow semantics: first match wins.

        Returns ``(rule_or_None, tuples_searched)``.
        """
        self.stats.classifications += 1
        searched = 0
        for entry in self.tuples():
            searched += 1
            self.stats.tuple_lookups += 1
            rule = entry.lookup(flow)
            if rule is not None:
                self.stats.hits += 1
                if self.policy is not None:
                    self.policy.on_hit(entry.mask.key_of(flow))
                return rule, searched
        return None, searched

    def classify_all(self, flow: FiveTuple) -> List[Rule]:
        """All matching rules across every tuple (OpenFlow-layer helper)."""
        self.stats.classifications += 1
        matches: List[Rule] = []
        for entry in self.tuples():
            self.stats.tuple_lookups += 1
            rule = entry.lookup(flow)
            if rule is not None:
                matches.append(rule)
        if matches:
            self.stats.hits += 1
        return matches

    # -- HALO integration ---------------------------------------------------------
    def halo_queries(self, flow: FiveTuple) -> List[Tuple[CuckooHashTable, bytes]]:
        """(table, masked key) pairs for dispatching one packet's tuple
        lookups to the accelerators at once (the Figure 11 NB idiom)."""
        return [(entry.table, entry.mask.key_of(flow))
                for entry in self.tuples()]
