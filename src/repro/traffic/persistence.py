"""Workload persistence: save and reload flow sets and packet traces.

Reproducibility helper: a generated workload (flow population plus the
exact packet order a run consumed) can be written to a compact file and
replayed bit-identically later or on another machine — the equivalent of
keeping the pcap an IXIA run was driven by.

Public contract: two formats.  ``repro-flows-v1``
(:func:`save_flow_set` / :func:`load_flow_set`) stores a whole
:class:`~repro.traffic.generator.FlowSet` plus an optional packet-index
trace, materialized in memory — right for the Figure-3-scale
populations.  ``repro-stream-v1`` (:func:`write_flow_stream` /
:func:`stream_flows`) is the million-flow path: one packet per line,
written from any iterable and read back as a *generator*, so a churn
trace round-trips in constant memory.  :func:`iter_flow_set` reads the
flow rows of a v1 file lazily for the same reason.  Both formats are
plain ASCII lines and host-independent.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from ..classifier.flow import FiveTuple
from .generator import FlowSet

_PathLike = Union[str, Path]

_FORMAT = "repro-flows-v1"
_STREAM_FORMAT = "repro-stream-v1"


def _flow_to_list(flow: FiveTuple) -> list:
    return [flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port,
            flow.proto]


def _flow_from_list(values: list) -> FiveTuple:
    if len(values) != 5:
        raise ValueError(f"malformed flow record: {values!r}")
    return FiveTuple(*values)


def save_flow_set(flow_set: FlowSet, path: _PathLike,
                  packet_indices: Iterable[int] = ()) -> int:
    """Write a flow set (and optionally a packet-order trace) to ``path``.

    ``packet_indices`` are indices into the flow set, one per packet.
    Returns the number of records written.
    """
    path = Path(path)
    packet_indices = list(packet_indices)
    records = 0
    with path.open("w", encoding="ascii") as handle:
        header = {"format": _FORMAT, "flows": len(flow_set),
                  "packets": len(packet_indices)}
        handle.write(json.dumps(header) + "\n")
        for flow in flow_set.flows:
            handle.write(json.dumps(_flow_to_list(flow)) + "\n")
            records += 1
        if packet_indices:
            handle.write(json.dumps({"trace": packet_indices}) + "\n")
    return records


def load_flow_set(path: _PathLike) -> Tuple[FlowSet, List[int]]:
    """Read a flow set and its packet trace back; inverse of
    :func:`save_flow_set`."""
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        flow_count = int(header["flows"])
        flows = []
        for _ in range(flow_count):
            flows.append(_flow_from_list(json.loads(handle.readline())))
        trace: List[int] = []
        tail = handle.readline()
        if tail.strip():
            record = json.loads(tail)
            trace = [int(i) for i in record.get("trace", [])]
            if any(not 0 <= i < flow_count for i in trace):
                raise ValueError(f"{path}: trace index out of range")
    return FlowSet(tuple(flows)), trace


def replay(flow_set: FlowSet, trace: List[int]):
    """Yield the traced packet flows in order."""
    for index in trace:
        yield flow_set[index]


def iter_flow_set(path: _PathLike) -> Iterator[FiveTuple]:
    """Stream the flow rows of a ``repro-flows-v1`` file lazily.

    Yields each flow as it is parsed — the memory-bounded counterpart of
    :func:`load_flow_set` (the trailing packet trace, if any, is
    skipped).
    """
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        for _ in range(int(header["flows"])):
            yield _flow_from_list(json.loads(handle.readline()))


def write_flow_stream(path: _PathLike, flows: Iterable[FiveTuple]) -> int:
    """Write packets to a ``repro-stream-v1`` file, one flow per line.

    Consumes any iterable — including a live
    :meth:`~repro.workloads.churn.ChurnEngine.packets` generator — and
    never buffers it, so million-flow traces stream straight to disk.
    Returns the number of records written.
    """
    path = Path(path)
    records = 0
    with path.open("w", encoding="ascii") as handle:
        handle.write(json.dumps({"format": _STREAM_FORMAT}) + "\n")
        for flow in flows:
            handle.write(f"{flow.src_ip},{flow.dst_ip},{flow.src_port},"
                         f"{flow.dst_port},{flow.proto}\n")
            records += 1
    return records


def stream_flows(path: _PathLike) -> Iterator[FiveTuple]:
    """Read a ``repro-stream-v1`` file back as a lazy flow iterator.

    The inverse of :func:`write_flow_stream`: a generator, so arbitrarily
    large traces replay in constant memory.
    """
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != _STREAM_FORMAT:
            raise ValueError(f"{path}: not a {_STREAM_FORMAT} file")
        for line in handle:
            line = line.strip()
            if not line:
                continue
            values = line.split(",")
            if len(values) != 5:
                raise ValueError(f"{path}: malformed record {line!r}")
            yield FiveTuple(int(values[0]), int(values[1]), int(values[2]),
                            int(values[3]), int(values[4]))
