"""Workload persistence: save and reload flow sets and packet traces.

Reproducibility helper: a generated workload (flow population plus the
exact packet order a run consumed) can be written to a compact file and
replayed bit-identically later or on another machine — the equivalent of
keeping the pcap an IXIA run was driven by.

Public contract: two formats.  ``repro-flows-v1``
(:func:`save_flow_set` / :func:`load_flow_set`) stores a whole
:class:`~repro.traffic.generator.FlowSet` plus an optional packet-index
trace, materialized in memory — right for the Figure-3-scale
populations.  ``repro-stream-v2`` (:func:`write_flow_stream` /
:func:`stream_flows`) is the million-flow path: one packet per line
with a per-record CRC32 suffix, written from any iterable and read back
as a *generator*, so a churn trace round-trips in constant memory and a
torn or bit-flipped record fails loudly instead of replaying a subtly
different workload.  The reader also accepts the legacy, un-checksummed
``repro-stream-v1`` format.  :func:`iter_flow_set` reads the flow rows
of a v1 file lazily for the same reason.  All formats are plain ASCII
lines and host-independent.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Iterable, Iterator, List, Tuple, Union

from ..classifier.flow import FiveTuple
from .generator import FlowSet

_PathLike = Union[str, Path]

_FORMAT = "repro-flows-v1"
_STREAM_FORMAT = "repro-stream-v1"
_STREAM_FORMAT_V2 = "repro-stream-v2"


def _flow_to_list(flow: FiveTuple) -> list:
    return [flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port,
            flow.proto]


def _flow_from_list(values: list) -> FiveTuple:
    if len(values) != 5:
        raise ValueError(f"malformed flow record: {values!r}")
    return FiveTuple(*values)


def save_flow_set(flow_set: FlowSet, path: _PathLike,
                  packet_indices: Iterable[int] = ()) -> int:
    """Write a flow set (and optionally a packet-order trace) to ``path``.

    ``packet_indices`` are indices into the flow set, one per packet.
    Returns the number of records written.
    """
    path = Path(path)
    packet_indices = list(packet_indices)
    records = 0
    with path.open("w", encoding="ascii") as handle:
        header = {"format": _FORMAT, "flows": len(flow_set),
                  "packets": len(packet_indices)}
        handle.write(json.dumps(header) + "\n")
        for flow in flow_set.flows:
            handle.write(json.dumps(_flow_to_list(flow)) + "\n")
            records += 1
        if packet_indices:
            handle.write(json.dumps({"trace": packet_indices}) + "\n")
    return records


def load_flow_set(path: _PathLike) -> Tuple[FlowSet, List[int]]:
    """Read a flow set and its packet trace back; inverse of
    :func:`save_flow_set`."""
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        flow_count = int(header["flows"])
        flows = []
        for _ in range(flow_count):
            flows.append(_flow_from_list(json.loads(handle.readline())))
        trace: List[int] = []
        tail = handle.readline()
        if tail.strip():
            record = json.loads(tail)
            trace = [int(i) for i in record.get("trace", [])]
            if any(not 0 <= i < flow_count for i in trace):
                raise ValueError(f"{path}: trace index out of range")
    return FlowSet(tuple(flows)), trace


def replay(flow_set: FlowSet, trace: List[int]):
    """Yield the traced packet flows in order."""
    for index in trace:
        yield flow_set[index]


def iter_flow_set(path: _PathLike) -> Iterator[FiveTuple]:
    """Stream the flow rows of a ``repro-flows-v1`` file lazily.

    Yields each flow as it is parsed — the memory-bounded counterpart of
    :func:`load_flow_set` (the trailing packet trace, if any, is
    skipped).
    """
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != _FORMAT:
            raise ValueError(f"{path}: not a {_FORMAT} file")
        for _ in range(int(header["flows"])):
            yield _flow_from_list(json.loads(handle.readline()))


def write_flow_stream(path: _PathLike, flows: Iterable[FiveTuple]) -> int:
    """Write packets to a ``repro-stream-v2`` file, one flow per line.

    Consumes any iterable — including a live
    :meth:`~repro.workloads.churn.ChurnEngine.packets` generator — and
    never buffers it, so million-flow traces stream straight to disk.
    Each record carries a CRC32 of its payload (``payload;crc32hex``) so
    a torn write or bit flip is caught at replay time instead of
    silently perturbing a "reproducible" run.  Returns the number of
    records written.
    """
    path = Path(path)
    records = 0
    with path.open("w", encoding="ascii") as handle:
        handle.write(json.dumps({"format": _STREAM_FORMAT_V2}) + "\n")
        for flow in flows:
            payload = (f"{flow.src_ip},{flow.dst_ip},{flow.src_port},"
                       f"{flow.dst_port},{flow.proto}")
            crc = zlib.crc32(payload.encode("ascii"))
            handle.write(f"{payload};{crc:08x}\n")
            records += 1
    return records


def _parse_stream_record(payload: str, path: Path,
                         line_number: int) -> FiveTuple:
    values = payload.split(",")
    if len(values) != 5:
        raise ValueError(
            f"{path}:{line_number}: malformed record {payload!r}")
    return FiveTuple(int(values[0]), int(values[1]), int(values[2]),
                     int(values[3]), int(values[4]))


def stream_flows(path: _PathLike) -> Iterator[FiveTuple]:
    """Read a stream file back as a lazy flow iterator.

    The inverse of :func:`write_flow_stream`: a generator, so arbitrarily
    large traces replay in constant memory.  Accepts both
    ``repro-stream-v2`` (checksummed — every record's CRC32 is verified,
    and a mismatch raises :class:`ValueError` naming the line) and the
    legacy ``repro-stream-v1`` (no checksums) written by older trees.
    """
    path = Path(path)
    with path.open("r", encoding="ascii") as handle:
        header = json.loads(handle.readline())
        version = header.get("format")
        if version not in (_STREAM_FORMAT, _STREAM_FORMAT_V2):
            raise ValueError(
                f"{path}: not a {_STREAM_FORMAT_V2} (or v1) file")
        checksummed = version == _STREAM_FORMAT_V2
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            payload = line
            if checksummed:
                payload, separator, stated = line.rpartition(";")
                if not separator or len(stated) != 8:
                    raise ValueError(
                        f"{path}:{line_number}: record missing checksum")
                actual = zlib.crc32(payload.encode("ascii"))
                if stated != f"{actual:08x}":
                    raise ValueError(
                        f"{path}:{line_number}: checksum mismatch "
                        f"(stored {stated}, computed {actual:08x}) — "
                        f"corrupted record")
            yield _parse_stream_record(payload, path, line_number)
