"""Workload generation: flow sets, packet streams, and the paper's named
traffic profiles (the IXIA-substitute)."""

from .generator import FlowSet, PacketStream, key_stream, random_keys
from .persistence import (iter_flow_set, load_flow_set, replay,
                          save_flow_set, stream_flows,
                          write_flow_stream)
from .profiles import (
    FIGURE3_PROFILES,
    GROUP_MASKS,
    RULE_MASKS,
    TrafficProfile,
    profile_by_name,
)

__all__ = [
    "FIGURE3_PROFILES",
    "FlowSet",
    "PacketStream",
    "GROUP_MASKS",
    "RULE_MASKS",
    "TrafficProfile",
    "key_stream",
    "iter_flow_set",
    "load_flow_set",
    "replay",
    "save_flow_set",
    "stream_flows",
    "write_flow_stream",
    "profile_by_name",
    "random_keys",
]
