"""Workload generation: flow sets, packet streams, and the paper's named
traffic profiles (the IXIA-substitute)."""

from .generator import FlowSet, PacketStream, key_stream, random_keys
from .persistence import load_flow_set, replay, save_flow_set
from .profiles import (
    FIGURE3_PROFILES,
    GROUP_MASKS,
    RULE_MASKS,
    TrafficProfile,
    profile_by_name,
)

__all__ = [
    "FIGURE3_PROFILES",
    "FlowSet",
    "PacketStream",
    "GROUP_MASKS",
    "RULE_MASKS",
    "TrafficProfile",
    "key_stream",
    "load_flow_set",
    "replay",
    "save_flow_set",
    "profile_by_name",
    "random_keys",
]
