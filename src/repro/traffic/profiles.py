"""Named workload profiles from the paper's evaluation.

§3.2 defines three data-centre scenarios realised as five configurations
(Figure 3):

* **Small number of flows** (overlay networks, many flows encapsulated
  under one header) — two configurations: 10K and 100K flows, exact rules.
* **Many flows** (routing to containers: few rules, flows from many
  addresses) — 100K and 1M flows over ~10 wildcard rules.
* **Many flows and rules** (gateway / ToR router) — 1M flows over 20 hot
  wildcard rules.

Each profile knows how to build its rule set and flow population.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..classifier.flow import FlowMask
from ..classifier.rules import Action, Rule
from .generator import FlowSet

#: Wildcard masks used by the synthetic rule sets: routing/ACL-style
#: prefix+port patterns.  Each distinct mask becomes one MegaFlow tuple, so
#: mask diversity drives the tuple counts of the paper's scenarios (OVS
#: deployments commonly run 5-20 tuples, §5.2).
RULE_MASKS = [
    FlowMask.prefixes(src_prefix=0, dst_prefix=16, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=0, dst_prefix=24, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=8, dst_prefix=16, src_port=False,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=16, dst_prefix=16, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=24, dst_prefix=8, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=0, dst_prefix=32, src_port=False,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=8, dst_prefix=24, src_port=True,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=16, dst_prefix=24, src_port=False,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=24, dst_prefix=16, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=32, dst_prefix=0, src_port=True,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=8, dst_prefix=8, src_port=False,
                      dst_port=False, proto=False),
    FlowMask.prefixes(src_prefix=0, dst_prefix=16, src_port=True,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=16, dst_prefix=0, src_port=False,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=24, dst_prefix=24, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=32, dst_prefix=16, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=0, dst_prefix=8, src_port=False,
                      dst_port=True, proto=False),
    FlowMask.prefixes(src_prefix=8, dst_prefix=32, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=16, dst_prefix=8, src_port=True,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=24, dst_prefix=0, src_port=False,
                      dst_port=True),
]

#: Masks that cover a whole destination group (see ``make_flow``): source
#: fields no finer than /8, destination prefixes that keep the group octets.
#: Rules rotate through these so each profile yields several tuples.
GROUP_MASKS = [
    FlowMask.prefixes(src_prefix=0, dst_prefix=16, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=0, dst_prefix=24, src_port=False,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=8, dst_prefix=16, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=8, dst_prefix=24, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=0, dst_prefix=24, src_port=False,
                      dst_port=False),
    FlowMask.prefixes(src_prefix=0, dst_prefix=16, src_port=False,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=8, dst_prefix=16, src_port=False,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=0, dst_prefix=16, src_port=False,
                      dst_port=False, proto=False),
    FlowMask.prefixes(src_prefix=8, dst_prefix=24, src_port=False,
                      dst_port=True),
    FlowMask.prefixes(src_prefix=0, dst_prefix=24, src_port=False,
                      dst_port=False, proto=False),
    FlowMask.prefixes(src_prefix=8, dst_prefix=16, src_port=False,
                      dst_port=False, proto=False),
    FlowMask.prefixes(src_prefix=8, dst_prefix=24, src_port=False,
                      dst_port=True, proto=False),
]


@dataclass(frozen=True)
class TrafficProfile:
    """One named Figure-3 configuration."""

    name: str
    description: str
    num_flows: int
    num_rules: int
    zipf_s: float = 0.0
    seed: int = 11

    def flow_set(self) -> FlowSet:
        return FlowSet.generate(self.num_flows, seed=self.seed,
                                groups=self.num_rules)

    def build_rules(self, flow_set: FlowSet) -> List[Rule]:
        """Wildcard rules that collectively cover the flow population.

        One rule per destination group, each under a rotating group-covering
        mask, so the rule set partitions the traffic and multiple MegaFlow
        tuples emerge (driving the tuple counts of the paper's scenarios).
        """
        rules: List[Rule] = []
        for group in range(self.num_rules):
            mask = GROUP_MASKS[group % len(GROUP_MASKS)]
            # FlowSet.generate assigns groups round-robin, so flow ``group``
            # belongs to destination group ``group``.
            anchor = flow_set[group % len(flow_set)]
            rules.append(Rule(
                mask=mask,
                match=mask.apply(anchor),
                action=Action.output(group % 8),
                priority=self.num_rules - group,
            ))
        # A catch-all so no packet punts to the controller mid-benchmark.
        catch_all = FlowMask.prefixes(src_prefix=0, dst_prefix=0,
                                      src_port=False, dst_port=False,
                                      proto=False)
        rules.append(Rule(mask=catch_all,
                          match=catch_all.apply(flow_set[0]),
                          action=Action.output(0), priority=0))
        return rules

    def build(self) -> Tuple[FlowSet, List[Rule]]:
        flow_set = self.flow_set()
        return flow_set, self.build_rules(flow_set)


#: The five Figure-3 configurations (small -> large working sets).
FIGURE3_PROFILES: List[TrafficProfile] = [
    TrafficProfile(
        name="small-10K",
        description="overlay: 10K flows, exact rules, EMC-friendly",
        num_flows=10_000, num_rules=4, zipf_s=1.1),
    TrafficProfile(
        name="small-100K",
        description="overlay: 100K flows, exact rules",
        num_flows=100_000, num_rules=4, zipf_s=1.0),
    TrafficProfile(
        name="many-flows-100K",
        description="container routing: 100K flows, 10 rules",
        num_flows=100_000, num_rules=10, zipf_s=0.6),
    TrafficProfile(
        name="many-flows-1M",
        description="container routing: 1M flows, 10 rules",
        num_flows=1_000_000, num_rules=10, zipf_s=0.4),
    TrafficProfile(
        name="many-flows-rules-1M",
        description="gateway/ToR: 1M flows, 20 hot rules",
        num_flows=1_000_000, num_rules=20, zipf_s=0.2),
]


def profile_by_name(name: str) -> TrafficProfile:
    for profile in FIGURE3_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown traffic profile {name!r}")
