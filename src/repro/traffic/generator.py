"""Synthetic traffic generation — the IXIA substitute.

Generates flow populations and packet streams with controllable skew.
Virtual-switch performance depends only on header/flow distributions (the
paper: "their performances are not related to the payload size of packets"),
so a deterministic, seedable header stream reproduces the workloads.

numpy is the optional ``fast`` extra: when it is installed the streams
are drawn from ``numpy.random`` (the canonical sequences the recorded
experiment expectations were produced with); without it a stdlib
``random`` fallback produces different but equally deterministic
sequences, which is all the no-numpy leg's property tests need.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from ..classifier.flow import FiveTuple, PROTO_UDP, make_flow


@dataclass(frozen=True)
class FlowSet:
    """A population of distinct flows."""

    flows: Sequence[FiveTuple]

    def __len__(self) -> int:
        return len(self.flows)

    def __getitem__(self, index: int) -> FiveTuple:
        return self.flows[index]

    @classmethod
    def generate(cls, count: int, seed: int = 0, proto: int = PROTO_UDP,
                 groups: Optional[int] = None) -> "FlowSet":
        """``count`` distinct flows, deterministically derived from seed.

        With ``groups`` set, flows are spread round-robin over that many
        destination groups (see :func:`~repro.classifier.flow.make_flow`),
        so a ``groups``-rule wildcard rule set can partition the traffic.
        """
        # Random distinct indices into a much larger flow space keep the
        # hash distribution realistic (sequential indices would correlate).
        space = max(count * 4, 1024)
        if np is not None:
            rng = np.random.default_rng(seed)
            indices = rng.choice(space, size=count, replace=False)
        else:
            indices = random.Random(seed).sample(range(space), count)
        flows = [
            make_flow(int(index), proto=proto,
                      group=(position % groups) if groups else None)
            for position, index in enumerate(indices)
        ]
        return cls(tuple(flows))


class PacketStream:
    """An endless, seeded stream of flow references.

    ``zipf_s == 0`` gives uniform traffic; larger values concentrate traffic
    on hot flows (data-centre traffic is heavy-tailed — paper refs [5, 65]).
    """

    def __init__(self, flow_set: FlowSet, zipf_s: float = 0.0,
                 seed: int = 1) -> None:
        if not len(flow_set):
            raise ValueError("empty flow set")
        self.flow_set = flow_set
        self.zipf_s = zipf_s
        self._rng = (np.random.default_rng(seed) if np is not None
                     else random.Random(seed))
        if zipf_s > 0.0:
            if np is not None:
                ranks = np.arange(1, len(flow_set) + 1, dtype=np.float64)
                weights = ranks ** (-zipf_s)
                self._cdf = np.cumsum(weights / weights.sum())
            else:
                weights = [rank ** (-zipf_s)
                           for rank in range(1, len(flow_set) + 1)]
                total = sum(weights)
                cdf: List[float] = []
                running = 0.0
                for weight in weights:
                    running += weight / total
                    cdf.append(running)
                self._cdf = cdf
        else:
            self._cdf = None

    def next_flow(self) -> FiveTuple:
        if np is not None:
            if self._cdf is None:
                index = int(self._rng.integers(0, len(self.flow_set)))
            else:
                index = int(np.searchsorted(self._cdf, self._rng.random()))
                index = min(index, len(self.flow_set) - 1)
        else:
            if self._cdf is None:
                index = self._rng.randrange(len(self.flow_set))
            else:
                index = bisect.bisect_left(self._cdf, self._rng.random())
                index = min(index, len(self.flow_set) - 1)
        return self.flow_set[index]

    def take(self, count: int) -> List[FiveTuple]:
        return [self.next_flow() for _ in range(count)]

    def __iter__(self) -> Iterator[FiveTuple]:
        while True:
            yield self.next_flow()


def key_stream(flow_set: FlowSet, count: int, zipf_s: float = 0.0,
               seed: int = 1) -> List[bytes]:
    """``count`` packed 16-byte keys drawn from the flow set."""
    stream = PacketStream(flow_set, zipf_s=zipf_s, seed=seed)
    return [flow.pack() for flow in stream.take(count)]


def random_keys(count: int, key_bytes: int = 16, seed: int = 2) -> List[bytes]:
    """Distinct random byte keys (for raw hash-table experiments)."""
    if np is None:
        rng = random.Random(seed)
        seen = set()
        keys: List[bytes] = []
        while len(keys) < count:
            key = rng.randbytes(key_bytes)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(count, key_bytes), dtype=np.uint8)
    keys = [bytes(row) for row in data]
    # Regenerate any collisions (vanishingly rare at 16 bytes).
    seen = set()
    for index, key in enumerate(keys):
        while key in seen:
            key = bytes(rng.integers(0, 256, size=key_bytes, dtype=np.uint8))
        seen.add(key)
        keys[index] = key
    return keys
