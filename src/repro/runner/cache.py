"""Content-addressed on-disk cache for completed experiment runs.

The paper's evaluation (HALO §6) is a grid of deterministic simulations,
so a completed run never needs recomputing unless its inputs change —
exactly the property a content-addressed cache can enforce.

A run's cache key is the SHA-256 of ``(cache format version, experiment
name, grid label, canonical-JSON params, seed, code fingerprint)``.  The code fingerprint
hashes every ``*.py`` file under the installed ``repro`` package, so any
source change — the experiment, the simulator, the hash table — silently
invalidates every cached result computed with the old code.  That is the
property that makes the cache safe to leave on by default: a hit is only
possible when the exact same code would recompute the exact same bytes.

Entries are pickles (payloads are the experiment modules' own result
dataclasses) stored one file per run under
``<cache root>/<experiment>/<label>-<key16>.pkl``; writes go through a
temp file + :func:`os.replace` so a crashed worker never leaves a
half-written entry behind.  The root defaults to
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-bench``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
from typing import Any, Dict, Optional

from .schema import RunSpec

#: Bump when the entry layout changes; old entries then read as misses.
ENTRY_SCHEMA = 1

#: The cache *format* version, part of the content address itself.  Bump
#: when the meaning of stored payloads changes without an entry-layout
#: change — e.g. an experiment's result dataclass gains a field, or the
#: pickling strategy changes — so every old entry misses (different key,
#: different filename) instead of deserialising into the wrong shape.
CACHE_FORMAT_VERSION = 2

DEFAULT_CACHE_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get(DEFAULT_CACHE_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-bench"


@functools.lru_cache(maxsize=None)
def _fingerprint_of_tree(root: str) -> str:
    digest = hashlib.sha256()
    for path in sorted(pathlib.Path(root).rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def code_fingerprint() -> str:
    """A short hash of every source file in the ``repro`` package."""
    import repro

    return _fingerprint_of_tree(str(pathlib.Path(repro.__file__).parent))


def canonical_params(params: Dict[str, Any]) -> str:
    """Params as canonical JSON (sorted keys) so dict ordering never
    changes the key.  Params must be JSON-serializable by construction —
    ``BENCH`` grids are plain data."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """On-disk memoization of :class:`~repro.runner.schema.RunSpec` runs."""

    def __init__(self, root: Optional[pathlib.Path] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.fingerprint = fingerprint or code_fingerprint()

    # -- keys ----------------------------------------------------------------
    def key(self, experiment: str, label: str, params: Dict[str, Any],
            seed: int) -> str:
        material = "\x00".join((
            f"schema={ENTRY_SCHEMA}",
            f"format={CACHE_FORMAT_VERSION}",
            experiment,
            label,
            canonical_params(params),
            str(seed),
            self.fingerprint,
        ))
        return hashlib.sha256(material.encode()).hexdigest()

    def path_for(self, spec: RunSpec) -> pathlib.Path:
        key = spec.cache_key or self.key(spec.experiment, spec.label,
                                         spec.params, spec.seed)
        return self.root / spec.experiment / f"{spec.label}-{key[:16]}.pkl"

    # -- load/store ----------------------------------------------------------
    def load(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The stored entry dict, or ``None`` on any miss — including a
        corrupt or unreadable file (treated as absent, then overwritten)."""
        path = self.path_for(spec)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != ENTRY_SCHEMA:
            return None
        if entry.get("format") != CACHE_FORMAT_VERSION:
            return None
        expected = spec.cache_key or self.key(spec.experiment, spec.label,
                                              spec.params, spec.seed)
        if entry.get("key") != expected:
            return None
        return entry

    def store(self, spec: RunSpec, payload: Any, wall_s: float) -> None:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": ENTRY_SCHEMA,
            "format": CACHE_FORMAT_VERSION,
            "key": spec.cache_key or self.key(spec.experiment, spec.label,
                                              spec.params, spec.seed),
            "experiment": spec.experiment,
            "label": spec.label,
            "params": spec.params,
            "seed": spec.seed,
            "fingerprint": self.fingerprint,
            "payload": payload,
            "wall_s": wall_s,
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
