"""Supervised worker pool: one killable process per run, with deadlines.

``concurrent.futures.ProcessPoolExecutor`` (the scheduler's fast path)
cannot enforce per-task timeouts: a hung worker holds its slot forever
and ``Future.cancel`` is powerless once a task has started.  When the
operator asks for ``--timeout``/``--retries``, the scheduler switches to
this pool instead — it spawns a fresh ``multiprocessing.Process`` per
run, so a run that blows its wall-clock budget can be *killed*
(``terminate``) without poisoning any shared worker state, then retried
a bounded number of times with backoff.

Results travel back over a per-run ``Pipe``.  A child that dies without
reporting (segfault, OOM kill, ``terminate``) is distinguished from one
that raised: the former becomes a retryable :class:`WorkerCrashedError`
or :class:`RunTimeoutError`, the latter carries the child's own
exception type, message, and traceback.

Children ignore ``SIGINT``: graceful shutdown is the *supervisor's* job
(stop dispatching, drain in-flight runs), so a terminal Ctrl-C must not
also rip the workers out from under it mid-drain.

Public contract: :func:`run_supervised` (its signature — including the
optional ``entrypoint="module:function"`` redirect that lets
non-registry callers such as ``repro.cluster`` run arbitrary picklable
work units under the same supervision — and the timeout/retry semantics
above), :class:`PoolOutcome`, and the exception types
:class:`RunTimeoutError` / :class:`WorkerCrashedError` are stable API —
the scheduler and external harnesses may rely on them.  The worker
internals, pipe protocol, and backoff arithmetic are implementation
detail and may change without notice.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .schema import RunSpec

#: How long the supervisor sleeps between polls of its active children.
POLL_INTERVAL_S = 0.02

#: Grace period for ``join`` after ``terminate`` before escalating.
TERMINATE_GRACE_S = 2.0


class RunTimeoutError(RuntimeError):
    """A run exceeded its wall-clock budget and was killed."""


class WorkerCrashedError(RuntimeError):
    """A worker process died without reporting a result."""


@dataclass
class PoolOutcome:
    """What the supervisor concluded about one run.

    Failures carry the *child's* exception identity (type name, message,
    traceback text) rather than a rebuilt exception object — the original
    never crosses the process boundary, and the failure record only needs
    the strings anyway."""

    spec: RunSpec
    ok: bool
    payload: Any = None
    wall_s: float = 0.0
    attempts: int = 1
    error_type: str = ""
    message: str = ""
    traceback: str = ""


def _resolve_entrypoint(entrypoint: str):
    """Resolve a ``"module:function"`` dotted path (child-side)."""
    import importlib

    module_name, _, func_name = entrypoint.partition(":")
    if not module_name or not func_name:
        raise ValueError(
            f"entrypoint {entrypoint!r} must be 'module:function'")
    return getattr(importlib.import_module(module_name), func_name)


def _child_main(conn, experiment: str, label: str,
                params: Dict[str, Any], seed: int,
                entrypoint: Optional[str] = None) -> None:
    """Entry point of one worker process: run the grid point, report."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        if entrypoint is not None:
            func = _resolve_entrypoint(entrypoint)
            start = time.perf_counter()
            payload = func(label, params, seed)
            wall = time.perf_counter() - start
        else:
            # Local import keeps the child's startup path identical to
            # the ProcessPoolExecutor workers': resolve the hook
            # in-process.
            from .scheduler import _execute_payload
            payload, wall = _execute_payload(experiment, label, params,
                                             seed)
        conn.send(("ok", payload, wall))
    except BaseException as exc:  # noqa: BLE001 - report, never swallow
        conn.send(("error", type(exc).__name__, str(exc),
                   "".join(traceback_module.format_exception(
                       type(exc), exc, exc.__traceback__))))
    finally:
        conn.close()


@dataclass
class _Active:
    """Supervisor-side state for one live worker."""

    spec: RunSpec
    process: multiprocessing.Process
    conn: Any
    deadline: Optional[float]
    attempt: int
    started: float


def run_supervised(pending: Sequence[RunSpec], *, jobs: int,
                   timeout_s: Optional[float] = None,
                   retries: int = 0,
                   backoff_s: float = 0.5,
                   should_stop: Callable[[], bool] = lambda: False,
                   entrypoint: Optional[str] = None,
                   ) -> Tuple[List[PoolOutcome], List[RunSpec]]:
    """Run ``pending`` under supervision; returns ``(outcomes, skipped)``.

    ``skipped`` is the tail of runs never dispatched because
    ``should_stop`` flipped (SIGINT drain): in-flight runs are allowed to
    finish (their timeouts still enforced), queued ones are returned
    untouched so the journal/caller can account for them.

    ``entrypoint`` (``"module:function"``) redirects the children away
    from the experiment registry: each worker resolves the dotted path
    in its own process and calls ``function(label, params, seed)`` with
    the spec's fields.  ``None`` keeps the registry path (the scheduler's
    contract).  This is how non-registry callers — e.g. the
    ``repro.cluster`` shard runner — reuse the pool's kill/retry
    machinery for genuinely parallel simulations.
    """
    queue: List[Tuple[RunSpec, int, float]] = [
        (spec, 1, 0.0) for spec in pending]  # (spec, attempt, not_before)
    active: List[_Active] = []
    outcomes: List[PoolOutcome] = []
    skipped: List[RunSpec] = []
    jobs = max(1, jobs)

    def _launch(spec: RunSpec, attempt: int) -> None:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_child_main,
            args=(child_conn, spec.experiment, spec.label, spec.params,
                  spec.seed, entrypoint),
            daemon=True)
        process.start()
        child_conn.close()
        now = time.monotonic()
        active.append(_Active(
            spec=spec, process=process, conn=parent_conn,
            deadline=(now + timeout_s) if timeout_s else None,
            attempt=attempt, started=now))

    def _conclude(entry: _Active, outcome: PoolOutcome) -> None:
        entry.conn.close()
        entry.process.join(timeout=TERMINATE_GRACE_S)
        outcomes.append(outcome)

    def _retry_or_fail(entry: _Active, error_type: str, message: str,
                       tb: str) -> None:
        if entry.attempt <= retries and not should_stop():
            delay = backoff_s * (2 ** (entry.attempt - 1))
            queue.insert(0, (entry.spec, entry.attempt + 1,
                             time.monotonic() + delay))
            entry.conn.close()
            entry.process.join(timeout=TERMINATE_GRACE_S)
            return
        _conclude(entry, PoolOutcome(
            spec=entry.spec, ok=False, attempts=entry.attempt,
            wall_s=time.monotonic() - entry.started,
            error_type=error_type, message=message, traceback=tb))

    while queue or active:
        if should_stop():
            # Drain mode: dispatch nothing new; in-flight runs finish
            # (or time out) below.
            skipped.extend(spec for spec, _a, _nb in queue)
            queue.clear()

        now = time.monotonic()
        while queue and len(active) < jobs:
            # Dispatch in order, but respect retry backoff windows.
            index = next((i for i, (_s, _a, not_before) in enumerate(queue)
                          if not_before <= now), None)
            if index is None:
                break
            spec, attempt, _not_before = queue.pop(index)
            _launch(spec, attempt)

        progressed = False
        for entry in list(active):
            message = None
            if entry.conn.poll():
                try:
                    message = entry.conn.recv()
                except (EOFError, OSError):
                    message = None  # died between connect and send
            if message is not None:
                active.remove(entry)
                progressed = True
                if message[0] == "ok":
                    _, payload, wall = message
                    _conclude(entry, PoolOutcome(
                        spec=entry.spec, ok=True, payload=payload,
                        wall_s=wall, attempts=entry.attempt))
                else:
                    _, kind, text, tb = message
                    _retry_or_fail(entry, kind, text, tb)
                continue
            if not entry.process.is_alive():
                active.remove(entry)
                progressed = True
                _retry_or_fail(
                    entry, WorkerCrashedError.__name__,
                    f"worker for {entry.spec.run_id} exited with code "
                    f"{entry.process.exitcode} before reporting a result",
                    "")
                continue
            if entry.deadline is not None and now >= entry.deadline:
                entry.process.terminate()
                entry.process.join(timeout=TERMINATE_GRACE_S)
                if entry.process.is_alive():  # pragma: no cover - stuck in D
                    entry.process.kill()
                    entry.process.join(timeout=TERMINATE_GRACE_S)
                active.remove(entry)
                progressed = True
                _retry_or_fail(
                    entry, RunTimeoutError.__name__,
                    f"{entry.spec.run_id} exceeded {timeout_s:.1f}s "
                    f"wall-clock budget (attempt {entry.attempt}) "
                    f"and was killed",
                    "")

        if not progressed and (active or queue):
            time.sleep(POLL_INTERVAL_S)

    return outcomes, skipped
