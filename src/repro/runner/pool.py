"""Supervised worker pool: one killable process per run, with deadlines.

``concurrent.futures.ProcessPoolExecutor`` (the scheduler's fast path)
cannot enforce per-task timeouts: a hung worker holds its slot forever
and ``Future.cancel`` is powerless once a task has started.  When the
operator asks for ``--timeout``/``--retries``, the scheduler switches to
this pool instead — it spawns a fresh ``multiprocessing.Process`` per
run, so a run that blows its wall-clock budget can be *killed*
(``terminate``) without poisoning any shared worker state, then retried
a bounded number of times with backoff.

Results travel back over a per-run ``Pipe``.  A child that dies without
reporting (segfault, OOM kill, ``terminate``) is distinguished from one
that raised: the former becomes a retryable :class:`WorkerCrashedError`
or :class:`RunTimeoutError`, the latter carries the child's own
exception type, message, and traceback.

Children ignore ``SIGINT``: graceful shutdown is the *supervisor's* job
(stop dispatching, drain in-flight runs), so a terminal Ctrl-C must not
also rip the workers out from under it mid-drain.

Failure *classification* is part of the contract: every failed outcome
carries a ``failure_kind`` — ``"crash"`` (the process died without
reporting), ``"timeout"`` (the supervisor killed it at the deadline),
``"livelock"`` (the child's own guard raised a
:class:`~repro.guard.errors.StallError`), or ``"error"`` (any other
child exception) — so callers such as the cluster failover layer can
react to *how* a run died, not just that it did.  Every failed attempt
(including ones later recovered by retry) is recorded in
``PoolOutcome.attempt_failures``, surfacing per-run health to the
caller instead of burying it in the retry loop.

Public contract: :func:`run_supervised` (its signature — including the
optional ``entrypoint="module:function"`` redirect that lets
non-registry callers such as ``repro.cluster`` run arbitrary picklable
work units under the same supervision — and the timeout/retry semantics
above), :class:`PoolOutcome` (including ``failure_kind`` and
``attempt_failures``), :func:`classify_failure`, the ``FAILURE_*``
kind constants, :func:`current_attempt` (the child-side attempt-number
seam fault planners read), and the exception types
:class:`RunTimeoutError` / :class:`WorkerCrashedError` are stable API —
the scheduler and external harnesses may rely on them.  The worker
internals, pipe protocol, and backoff arithmetic are implementation
detail and may change without notice.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .schema import RunSpec

#: How long the supervisor sleeps between polls of its active children.
POLL_INTERVAL_S = 0.02

#: Grace period for ``join`` after ``terminate`` before escalating.
TERMINATE_GRACE_S = 2.0


class RunTimeoutError(RuntimeError):
    """A run exceeded its wall-clock budget and was killed."""


class WorkerCrashedError(RuntimeError):
    """A worker process died without reporting a result."""


#: Failure kinds :func:`classify_failure` maps error types onto.
FAILURE_CRASH = "crash"
FAILURE_TIMEOUT = "timeout"
FAILURE_LIVELOCK = "livelock"
FAILURE_ERROR = "error"

#: Exception type names the guard raises on no-progress livelock; a child
#: that dies this way hung *productively* (events kept firing) and must
#: not be conflated with a wall-clock timeout in journals or health maps.
_LIVELOCK_ERROR_TYPES = frozenset({"StallError"})


def classify_failure(error_type: str) -> str:
    """Map a failed run's exception type name onto a failure kind.

    ``RunTimeoutError`` → ``"timeout"`` (supervisor deadline kill),
    ``WorkerCrashedError`` → ``"crash"`` (died without reporting),
    guard ``StallError`` → ``"livelock"`` (the watchdog caught events
    firing without progress), anything else → ``"error"``.
    """
    if error_type == RunTimeoutError.__name__:
        return FAILURE_TIMEOUT
    if error_type == WorkerCrashedError.__name__:
        return FAILURE_CRASH
    if error_type in _LIVELOCK_ERROR_TYPES:
        return FAILURE_LIVELOCK
    return FAILURE_ERROR


#: Child-process-side attempt number (1-based).  Set by ``_child_main``
#: before the work unit runs; ``None`` outside a supervised worker.
_CURRENT_ATTEMPT: Optional[int] = None


def current_attempt() -> Optional[int]:
    """The 1-based attempt number of the supervised worker this process
    is, or ``None`` when not running inside one.

    This is the seam deterministic chaos planners
    (:class:`~repro.faults.shard_plan.ShardFaultPlan`) key their
    per-attempt fault decisions on: the same ``(seed, shard, attempt)``
    triple fires the same fault on every run.
    """
    return _CURRENT_ATTEMPT


@dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt of one run (kept even when a retry recovers)."""

    attempt: int
    kind: str
    error_type: str
    message: str
    wall_s: float


@dataclass
class PoolOutcome:
    """What the supervisor concluded about one run.

    Failures carry the *child's* exception identity (type name, message,
    traceback text) rather than a rebuilt exception object — the original
    never crosses the process boundary, and the failure record only needs
    the strings anyway.  ``failure_kind`` classifies the *final* failure
    (empty for successes); ``attempt_failures`` lists every failed
    attempt, so a run that flapped and recovered still shows its
    history."""

    spec: RunSpec
    ok: bool
    payload: Any = None
    wall_s: float = 0.0
    attempts: int = 1
    error_type: str = ""
    message: str = ""
    traceback: str = ""
    failure_kind: str = ""
    attempt_failures: List["AttemptFailure"] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.attempt_failures is None:
            self.attempt_failures = []


def _resolve_entrypoint(entrypoint: str):
    """Resolve a ``"module:function"`` dotted path (child-side)."""
    import importlib

    module_name, _, func_name = entrypoint.partition(":")
    if not module_name or not func_name:
        raise ValueError(
            f"entrypoint {entrypoint!r} must be 'module:function'")
    return getattr(importlib.import_module(module_name), func_name)


def _child_main(conn, experiment: str, label: str,
                params: Dict[str, Any], seed: int,
                entrypoint: Optional[str] = None,
                attempt: int = 1) -> None:
    """Entry point of one worker process: run the grid point, report."""
    global _CURRENT_ATTEMPT
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _CURRENT_ATTEMPT = attempt
    try:
        if entrypoint is not None:
            func = _resolve_entrypoint(entrypoint)
            start = time.perf_counter()
            payload = func(label, params, seed)
            wall = time.perf_counter() - start
        else:
            # Local import keeps the child's startup path identical to
            # the ProcessPoolExecutor workers': resolve the hook
            # in-process.
            from .scheduler import _execute_payload
            payload, wall = _execute_payload(experiment, label, params,
                                             seed)
        conn.send(("ok", payload, wall))
    except BaseException as exc:  # noqa: BLE001 - report, never swallow
        conn.send(("error", type(exc).__name__, str(exc),
                   "".join(traceback_module.format_exception(
                       type(exc), exc, exc.__traceback__))))
    finally:
        conn.close()


@dataclass
class _Active:
    """Supervisor-side state for one live worker."""

    spec: RunSpec
    process: multiprocessing.Process
    conn: Any
    deadline: Optional[float]
    attempt: int
    started: float


def run_supervised(pending: Sequence[RunSpec], *, jobs: int,
                   timeout_s: Optional[float] = None,
                   retries: int = 0,
                   backoff_s: float = 0.5,
                   should_stop: Callable[[], bool] = lambda: False,
                   entrypoint: Optional[str] = None,
                   ) -> Tuple[List[PoolOutcome], List[RunSpec]]:
    """Run ``pending`` under supervision; returns ``(outcomes, skipped)``.

    ``skipped`` is the tail of runs never dispatched because
    ``should_stop`` flipped (SIGINT drain): in-flight runs are allowed to
    finish (their timeouts still enforced), queued ones are returned
    untouched so the journal/caller can account for them.

    ``entrypoint`` (``"module:function"``) redirects the children away
    from the experiment registry: each worker resolves the dotted path
    in its own process and calls ``function(label, params, seed)`` with
    the spec's fields.  ``None`` keeps the registry path (the scheduler's
    contract).  This is how non-registry callers — e.g. the
    ``repro.cluster`` shard runner — reuse the pool's kill/retry
    machinery for genuinely parallel simulations.
    """
    queue: List[Tuple[RunSpec, int, float]] = [
        (spec, 1, 0.0) for spec in pending]  # (spec, attempt, not_before)
    active: List[_Active] = []
    outcomes: List[PoolOutcome] = []
    skipped: List[RunSpec] = []
    #: Per-run health history: every failed attempt, keyed by run id, so
    #: the final outcome can surface the full story to the caller.
    attempt_log: Dict[str, List[AttemptFailure]] = {}
    jobs = max(1, jobs)

    def _launch(spec: RunSpec, attempt: int) -> None:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_child_main,
            args=(child_conn, spec.experiment, spec.label, spec.params,
                  spec.seed, entrypoint, attempt),
            daemon=True)
        process.start()
        child_conn.close()
        now = time.monotonic()
        active.append(_Active(
            spec=spec, process=process, conn=parent_conn,
            deadline=(now + timeout_s) if timeout_s else None,
            attempt=attempt, started=now))

    def _conclude(entry: _Active, outcome: PoolOutcome) -> None:
        entry.conn.close()
        entry.process.join(timeout=TERMINATE_GRACE_S)
        outcome.attempt_failures = attempt_log.get(entry.spec.run_id, [])
        outcomes.append(outcome)

    def _retry_or_fail(entry: _Active, error_type: str, message: str,
                       tb: str) -> None:
        kind = classify_failure(error_type)
        attempt_log.setdefault(entry.spec.run_id, []).append(AttemptFailure(
            attempt=entry.attempt, kind=kind, error_type=error_type,
            message=message,
            wall_s=time.monotonic() - entry.started))
        if entry.attempt <= retries and not should_stop():
            delay = backoff_s * (2 ** (entry.attempt - 1))
            queue.insert(0, (entry.spec, entry.attempt + 1,
                             time.monotonic() + delay))
            entry.conn.close()
            entry.process.join(timeout=TERMINATE_GRACE_S)
            return
        _conclude(entry, PoolOutcome(
            spec=entry.spec, ok=False, attempts=entry.attempt,
            wall_s=time.monotonic() - entry.started,
            error_type=error_type, message=message, traceback=tb,
            failure_kind=kind))

    while queue or active:
        if should_stop():
            # Drain mode: dispatch nothing new; in-flight runs finish
            # (or time out) below.
            skipped.extend(spec for spec, _a, _nb in queue)
            queue.clear()

        now = time.monotonic()
        while queue and len(active) < jobs:
            # Dispatch in order, but respect retry backoff windows.
            index = next((i for i, (_s, _a, not_before) in enumerate(queue)
                          if not_before <= now), None)
            if index is None:
                break
            spec, attempt, _not_before = queue.pop(index)
            _launch(spec, attempt)

        progressed = False
        for entry in list(active):
            message = None
            if entry.conn.poll():
                try:
                    message = entry.conn.recv()
                except (EOFError, OSError):
                    message = None  # died between connect and send
            if message is not None:
                active.remove(entry)
                progressed = True
                if message[0] == "ok":
                    _, payload, wall = message
                    _conclude(entry, PoolOutcome(
                        spec=entry.spec, ok=True, payload=payload,
                        wall_s=wall, attempts=entry.attempt))
                else:
                    _, kind, text, tb = message
                    _retry_or_fail(entry, kind, text, tb)
                continue
            if not entry.process.is_alive():
                active.remove(entry)
                progressed = True
                _retry_or_fail(
                    entry, WorkerCrashedError.__name__,
                    f"worker for {entry.spec.run_id} exited with code "
                    f"{entry.process.exitcode} before reporting a result",
                    "")
                continue
            if entry.deadline is not None and now >= entry.deadline:
                entry.process.terminate()
                entry.process.join(timeout=TERMINATE_GRACE_S)
                if entry.process.is_alive():  # pragma: no cover - stuck in D
                    entry.process.kill()
                    entry.process.join(timeout=TERMINATE_GRACE_S)
                active.remove(entry)
                progressed = True
                _retry_or_fail(
                    entry, RunTimeoutError.__name__,
                    f"{entry.spec.run_id} exceeded {timeout_s:.1f}s "
                    f"wall-clock budget (attempt {entry.attempt}) "
                    f"and was killed",
                    "")

        if not progressed and (active or queue):
            time.sleep(POLL_INTERVAL_S)

    return outcomes, skipped
