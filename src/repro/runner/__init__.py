"""``repro.runner`` — parallel experiment orchestration with cached results.

The paper's evaluation (HALO, ISCA 2019, §6) is a batched parameter
sweep: every figure and table is a grid of independent simulation runs
(table sizes for Figure 9, traffic profiles for Figure 3, NFs for
Figures 12/13, design knobs for the §4.7 ablations).  This package turns
that structure into an orchestration subsystem:

* :mod:`repro.runner.registry` discovers every experiment module under
  :mod:`repro.analysis.experiments` through the module-level ``BENCH``
  declaration (name, paper artifact, parameter grid, run/report hooks);
* :mod:`repro.runner.scheduler` shards the independent grid points
  across ``concurrent.futures.ProcessPoolExecutor`` workers with
  deterministic per-run seeds, so ``--jobs 4`` produces bit-identical
  results to serial execution;
* :mod:`repro.runner.cache` memoizes completed runs in a
  content-addressed on-disk cache keyed on experiment name, grid label,
  parameters, seed, and a fingerprint of the ``repro`` source tree —
  re-runs are instant until the code changes;
* :mod:`repro.runner.pool` supervises one killable process per run when
  ``--timeout``/``--retries`` are in play — hung runs are terminated at
  their wall-clock deadline and retried with backoff;
* :mod:`repro.runner.journal` keeps an append-only, crash-safe record of
  completed runs so ``--resume`` skips finished work after a crash or a
  Ctrl-C (which drains in-flight runs gracefully and exits 130);
* :mod:`repro.runner.schema` defines the grid/run/result dataclasses
  shared by all of the above.

Entry points: ``python -m repro bench`` (the CLI) and
:func:`run_benchmarks` / :func:`run_for_bench` (the library API the
``benchmarks/bench_*.py`` thin wrappers use).  Runner-level metrics
(cache hits/misses, per-run wall time) are published through a
:class:`repro.obs.MetricsRegistry`.  See ``docs/EXPERIMENTS.md`` for the
experiment catalog and ``docs/ARCHITECTURE.md`` for where this package
sits in the system.
"""

from __future__ import annotations

from .cache import CACHE_FORMAT_VERSION, ResultCache, code_fingerprint
from .journal import RunJournal, campaign_id, default_journal_path
from .perf import (
    BENCH_NAMES,
    PERF_SCHEMA_VERSION,
    BenchResult,
    compare_snapshots,
    run_perf_suite,
    validate_snapshot,
    write_snapshot,
)
from .pool import AttemptFailure, PoolOutcome, RunTimeoutError, \
    WorkerCrashedError, classify_failure, current_attempt, run_supervised
from .registry import (
    ExperimentLoadError,
    UnknownExperimentError,
    discover,
    get_experiment,
    resolve_names,
)
from .scheduler import (
    BenchFailedError,
    BenchSummary,
    RunFailure,
    archive_report,
    default_jobs,
    default_reports_dir,
    derive_seed,
    execute,
    plan_runs,
    run_benchmarks,
    run_for_bench,
    write_reports,
)
from .schema import ExperimentSpec, GridPoint, RunResult, RunSpec

__all__ = [
    "AttemptFailure",
    "BENCH_NAMES",
    "BenchFailedError",
    "BenchResult",
    "BenchSummary",
    "CACHE_FORMAT_VERSION",
    "PERF_SCHEMA_VERSION",
    "ExperimentLoadError",
    "ExperimentSpec",
    "GridPoint",
    "PoolOutcome",
    "ResultCache",
    "RunFailure",
    "RunJournal",
    "RunResult",
    "RunSpec",
    "RunTimeoutError",
    "UnknownExperimentError",
    "WorkerCrashedError",
    "archive_report",
    "campaign_id",
    "classify_failure",
    "code_fingerprint",
    "compare_snapshots",
    "current_attempt",
    "default_jobs",
    "default_journal_path",
    "default_reports_dir",
    "derive_seed",
    "discover",
    "execute",
    "get_experiment",
    "plan_runs",
    "resolve_names",
    "run_benchmarks",
    "run_for_bench",
    "run_perf_suite",
    "run_supervised",
    "validate_snapshot",
    "write_reports",
    "write_snapshot",
]
