"""Crash-safe campaign journal: which runs finished, incrementally.

A multi-hour sweep that dies at run 180/200 — OOM kill, power loss,
Ctrl-C — should not cost the first 179 runs.  The
:class:`~repro.runner.cache.ResultCache` already holds their *payloads*;
what is missing after a crash is an authoritative record of *campaign
progress*: which grid points completed (and with what outcome) in this
specific invocation's terms.  The journal is that record.

Design — append-only JSONL, one fact per line:

* line 1 is a header (``kind: "header"``) binding the journal to a
  journal-format version and the source-tree fingerprint it was written
  under;
* every completed run appends one record (``kind: "run"``) with the
  run id, cache key, outcome (``ok``/``failed``), wall time, and worker
  — flushed to the OS immediately, so the journal is current to within
  one line even when the process is killed mid-campaign;
* a torn final line (the crash happened *during* an append) is ignored
  on load, never an error.

``repro bench --resume`` replays the journal: grid points journaled
``ok`` under the same fingerprint *and the same cache key* are served
from the result cache and skipped; failed or missing points re-run.  A
fingerprint mismatch (the code changed since the crash) invalidates the
whole journal — resume then re-runs everything, which is the only safe
answer once results may differ.

Public contract: :class:`RunJournal` (open/append/replay and the
torn-line tolerance), :func:`campaign_id`, and
:func:`default_journal_path` are stable API, as is the JSONL record
shape documented above (``kind``/``run_id``/``outcome``/...). The
header's internal fields beyond ``version`` and ``fingerprint`` may
grow without notice; readers must ignore unknown keys.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from typing import Any, Dict, Optional, Sequence, TextIO

#: Bump when the journal line format changes; old journals then read as
#: empty (every run re-executes — always safe, never wrong).
JOURNAL_VERSION = 1


def campaign_id(names: Sequence[str], quick: bool, fingerprint: str) -> str:
    """A stable id for one campaign shape: which experiments, which mode,
    which code.  Different shapes journal to different files, so a quick
    smoke run never masks progress of the full sweep."""
    material = "\x00".join((
        f"journal={JOURNAL_VERSION}",
        ",".join(sorted(names)),
        f"quick={int(quick)}",
        fingerprint,
    ))
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def default_journal_path(cache_root: pathlib.Path,
                         names: Sequence[str], quick: bool,
                         fingerprint: str) -> pathlib.Path:
    """Default location: alongside the cache, keyed by campaign id."""
    return (pathlib.Path(cache_root) / "journals"
            / f"{campaign_id(names, quick, fingerprint)}.jsonl")


class RunJournal:
    """Append-only record of run completions for one campaign.

    Usage: ``open_for(fingerprint)`` once (validates or writes the
    header and loads prior records), then ``record_ok`` /
    ``record_failure`` per finished run, then ``close``.  ``completed``
    maps run id → the latest journaled record for it.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.completed: Dict[str, Dict[str, Any]] = {}
        self._handle: Optional[TextIO] = None
        self._stale = False

    @property
    def stale(self) -> bool:
        """True when a prior journal existed but could not be trusted
        (fingerprint or version mismatch) and was restarted."""
        return self._stale

    # -- lifecycle -----------------------------------------------------------
    def open_for(self, fingerprint: str) -> "RunJournal":
        """Load prior progress written under ``fingerprint`` and open the
        file for appending.  An unreadable, mismatched, or differently-
        fingerprinted journal is restarted from scratch."""
        records = self._load(fingerprint)
        if records is None:
            self._stale = self.path.exists()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
            self._append({"kind": "header", "version": JOURNAL_VERSION,
                          "fingerprint": fingerprint,
                          "created": time.time()})
        else:
            self.completed = records
            self._handle = open(self.path, "a", encoding="utf-8")
        return self

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- writes --------------------------------------------------------------
    def record_ok(self, run_id: str, cache_key: str, wall_s: float,
                  worker: str) -> None:
        self._record(run_id, "ok", cache_key, wall_s=wall_s, worker=worker)

    def record_failure(self, run_id: str, cache_key: str,
                       error_type: str, failure_kind: str = "") -> None:
        """Journal one failed run.

        ``failure_kind`` is the supervisor's classification
        (``crash`` / ``timeout`` / ``livelock`` / ``error`` — see
        :func:`repro.runner.pool.classify_failure`); recording it keeps
        a guard-detected livelock distinguishable from a wall-clock
        timeout when a campaign is audited after the fact."""
        self._record(run_id, "failed", cache_key, error_type=error_type,
                     failure_kind=failure_kind)

    def _record(self, run_id: str, status: str, cache_key: str,
                **extra: Any) -> None:
        record = {"kind": "run", "run_id": run_id, "status": status,
                  "key": cache_key, **extra}
        self.completed[run_id] = record
        self._append(record)

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise RuntimeError("journal is not open (call open_for first)")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush per record: the whole point is surviving a kill mid-campaign.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- reads ---------------------------------------------------------------
    def completed_ok(self, run_id: str, cache_key: str) -> bool:
        """True when ``run_id`` is journaled ``ok`` under this exact cache
        key — the resume-skip predicate."""
        record = self.completed.get(run_id)
        return (record is not None and record.get("status") == "ok"
                and record.get("key") == cache_key)

    def _load(self, fingerprint: str) -> Optional[Dict[str, Dict[str, Any]]]:
        """Parse the journal; ``None`` means start fresh (absent, torn
        header, version bump, or written by different code)."""
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return None
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return None
        if (not isinstance(header, dict)
                or header.get("kind") != "header"
                or header.get("version") != JOURNAL_VERSION
                or header.get("fingerprint") != fingerprint):
            return None
        records: Dict[str, Dict[str, Any]] = {}
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line from a mid-append crash
            if isinstance(record, dict) and record.get("kind") == "run" \
                    and "run_id" in record:
                records[record["run_id"]] = record
        return records
