"""Result and registration schema for the experiment runner.

Each spec names the paper artifact it reproduces (a figure, table, or
section of HALO §2-§6), so the catalog in ``docs/EXPERIMENTS.md`` and
the ``--json`` export can always map a run back to the paper.

An experiment module registers itself by exposing three things (see
``docs/EXPERIMENTS.md`` §"How to add an experiment"):

* ``BENCH`` — a plain-data dict with the experiment ``name`` (CLI name),
  ``artifact`` (the paper figure/table it reproduces), ``slug`` (report
  archive filename), ``title``, and a ``grid`` of
  ``(label, params, quick_params)`` tuples.  ``quick_params`` may be
  ``None`` to skip that grid point in quick mode.
* ``bench_run(label, params, seed)`` — executes one grid point and
  returns a picklable payload (usually the module's result dataclasses).
* ``bench_report(payloads)`` — renders the paper-vs-measured text from
  an ordered ``{label: payload}`` mapping (grid order; only the labels
  that actually ran are present).

Keeping ``BENCH`` as plain data means experiment modules never import
the runner, so there is no import cycle: the registry imports the
experiments, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

#: The keys every ``BENCH`` declaration must provide.
REQUIRED_BENCH_KEYS = ("name", "artifact", "slug", "title", "grid")


@dataclass(frozen=True)
class GridPoint:
    """One independent run in an experiment's parameter grid."""

    label: str
    params: Dict[str, Any]
    #: Parameters for ``--quick`` mode; ``None`` skips the point entirely.
    quick_params: Optional[Dict[str, Any]] = None

    def params_for(self, quick: bool) -> Optional[Dict[str, Any]]:
        """The parameter dict to run with, or ``None`` when skipped."""
        if not quick:
            return self.params
        return self.quick_params


@dataclass(frozen=True)
class ExperimentSpec:
    """A discovered experiment: identity, grid, and run/report hooks."""

    name: str
    artifact: str
    slug: str
    title: str
    module: str
    grid: Tuple[GridPoint, ...]
    run: Callable[[str, Dict[str, Any], int], Any]
    report: Callable[[Dict[str, Any]], str]

    def points(self, quick: bool = False) -> List[Tuple[str, Dict[str, Any]]]:
        """``(label, params)`` for every grid point active in this mode."""
        out = []
        for point in self.grid:
            params = point.params_for(quick)
            if params is not None:
                out.append((point.label, params))
        return out


@dataclass(frozen=True)
class RunSpec:
    """One schedulable unit of work: an experiment grid point plus the
    deterministic seed and cache key the scheduler derived for it."""

    experiment: str
    label: str
    params: Dict[str, Any]
    seed: int
    cache_key: str = ""

    @property
    def run_id(self) -> str:
        return f"{self.experiment}/{self.label}"


@dataclass
class RunResult:
    """The outcome of one run (fresh or replayed from the cache)."""

    experiment: str
    label: str
    params: Dict[str, Any]
    seed: int
    payload: Any
    wall_s: float
    cache_hit: bool
    worker: str = "inline"

    @property
    def run_id(self) -> str:
        return f"{self.experiment}/{self.label}"

    def meta_dict(self) -> Dict[str, Any]:
        """JSON-safe metadata (the payload itself stays out: it is an
        arbitrary pickle, exported only through the rendered report)."""
        return {
            "experiment": self.experiment,
            "label": self.label,
            "params": self.params,
            "seed": self.seed,
            "wall_s": round(self.wall_s, 6),
            "cache_hit": self.cache_hit,
            "worker": self.worker,
        }


@dataclass
class ExperimentReport:
    """Rendered output for one experiment across its grid points."""

    name: str
    artifact: str
    slug: str
    text: str
    runs: List[RunResult] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        return sum(run.wall_s for run in self.runs)


def validate_bench(module_name: str, bench: Dict[str, Any]) -> None:
    """Reject malformed ``BENCH`` declarations with a pointed error."""
    if not isinstance(bench, dict):
        raise TypeError(f"{module_name}.BENCH must be a dict")
    for key in REQUIRED_BENCH_KEYS:
        if key not in bench:
            raise ValueError(f"{module_name}.BENCH is missing {key!r}")
    labels = [entry[0] for entry in bench["grid"]]
    if len(labels) != len(set(labels)):
        raise ValueError(f"{module_name}.BENCH grid labels are not unique")
    if not labels:
        raise ValueError(f"{module_name}.BENCH grid is empty")
    for entry in bench["grid"]:
        if len(entry) != 3:
            raise ValueError(
                f"{module_name}.BENCH grid entries must be "
                f"(label, params, quick_params); got {entry!r}")
