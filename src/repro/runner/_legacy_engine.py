"""Frozen pre-campaign DES engine — the ``repro bench --perf`` baseline.

This is a verbatim snapshot of ``repro.sim.engine`` as it stood before the
hot-loop speed campaign (binary-heap calendar, per-hop tuple re-pack, no
slots).  The perf suite runs the same workload on this engine and on the
live one so every ``BENCH_*.json`` snapshot records ``speedup_vs_legacy``
measured on the *same host in the same process* — immune to machine noise
in a way absolute events/sec numbers are not.

Do not modernise this module; its whole value is that it does not change.
The original module docstring follows.

Discrete-event simulation engine.

A deliberately small, deterministic event-driven kernel in the spirit of
SimPy, tuned for cycle-level architecture modelling.  Time is measured in
integer (or float) *cycles*.  The engine provides:

* :class:`Engine` — the event loop with a binary-heap calendar.
* :class:`Process` — a coroutine (generator) driven by the engine.  A process
  ``yield``\\ s *waitables*: a cycle delay (``yield engine.timeout(n)``), an
  :class:`Event`, or a resource request.
* :class:`Event` — a one-shot completion signal carrying an optional value.
* :class:`Resource` — a counting resource with a FIFO wait queue (used to
  model scoreboard slots, queue ports, MSHRs, ...).
* :class:`Store` — an unbounded FIFO message channel (command/result queues).

The kernel is single-threaded and fully deterministic: events scheduled for
the same cycle fire in insertion order.

The engine also carries the harness safety net's attachment point: an
optional *guard* (see :mod:`repro.guard`) observes every event, enforces
cycle/event/wall-clock budgets, and detects deadlock when the calendar
drains with processes still blocked.  With no guard attached the event
loop is byte-for-byte the unguarded fast path.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Generator, List, Optional


class SimulationError(RuntimeError):
    """Raised for illegal engine usage (e.g. waiting on a triggered event)."""


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` triggers it, wakes all
    waiting processes, and records ``value``.  Triggering twice is an error.

    ``source`` back-references the object that minted the event (a
    :class:`Resource` for acquire events, a :class:`Store` for get events)
    so guard dumps can say *what* a blocked process is queued on.
    ``abandoned`` marks an event whose only waiter was killed while queued
    in a FIFO — :meth:`Resource.release` and :meth:`Store.put` skip such
    events instead of handing a slot or item to a dead process.
    """

    __slots__ = ("engine", "triggered", "value", "_waiters", "callbacks",
                 "source", "abandoned")

    def __init__(self, engine: "Engine", source: Any = None) -> None:
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []
        self.callbacks: List[Callable[["Event"], None]] = []
        self.source = source
        self.abandoned = False

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to every waiter."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for callback in self.callbacks:
            callback(self)
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine._schedule(self.engine.now, process, value)
        return self

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            # Already done: resume the process immediately (same cycle).
            self.engine._schedule(self.engine.now, process, self.value)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("at",)

    def __init__(self, engine: "Engine", delay: float) -> None:
        super().__init__(engine)
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.at = engine.now + delay
        engine._schedule_event(self.at, self)


class Process:
    """A generator-based simulated process.

    The generator may ``yield``:

    * an :class:`Event` (including :class:`Timeout`) — resumes when it fires,
      receiving the event's value;
    * ``None`` — resumes on the same cycle (a cooperative yield point).

    The process itself is an :class:`Event` — it triggers with the
    generator's return value when the generator finishes, so processes can
    wait on each other (fork/join).
    """

    __slots__ = ("engine", "generator", "done", "result", "_waiters", "name",
                 "waiting_on", "killed")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self._waiters: List["Process"] = []
        #: The waitable this process is currently blocked on (None while
        #: runnable/scheduled) — what a guard's deadlock dump reports.
        self.waiting_on: Optional[Any] = None
        self.killed = False
        engine._live[self] = None
        engine._schedule(engine.now, self, None)

    # Event-like interface so processes can be awaited with `yield proc`.
    @property
    def triggered(self) -> bool:
        return self.done

    @property
    def value(self) -> Any:
        return self.result

    def _add_waiter(self, process: "Process") -> None:
        if self.done:
            self.engine._schedule(self.engine.now, process, self.result)
        else:
            self._waiters.append(process)

    def _step(self, send_value: Any) -> None:
        self.waiting_on = None
        try:
            target = self.generator.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            self.engine._live.pop(self, None)
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                self.engine._schedule(self.engine.now, waiter, self.result)
            return
        if target is None:
            self.engine._schedule(self.engine.now, self, None)
        elif isinstance(target, (Event, Process)):
            self.waiting_on = target
            target._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )

    def kill(self) -> None:
        """Terminate the process immediately (watchdog/harness cleanup).

        The generator is closed (running its ``finally`` blocks), the
        process is marked done with a ``None`` result, and any processes
        joined on it are woken.  If it was blocked, it is detached from
        the waitable; an acquire/get event left with no live waiter is
        marked *abandoned* so :class:`Resource`/:class:`Store` FIFOs skip
        it instead of stranding capacity on a dead process.
        """
        if self.done:
            return
        self.generator.close()
        self.done = True
        self.killed = True
        self.result = None
        target, self.waiting_on = self.waiting_on, None
        if target is not None and not target.triggered:
            try:
                target._waiters.remove(self)
            except ValueError:
                pass
            if (isinstance(target, Event) and not target._waiters
                    and not target.callbacks):
                target.abandoned = True
        self.engine._live.pop(self, None)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.engine._schedule(self.engine.now, waiter, None)


class Resource:
    """A counting resource with ``capacity`` slots and a FIFO wait queue."""

    __slots__ = ("engine", "capacity", "in_use", "_queue", "peak_queue",
                 "total_waits", "dead_skips")

    def __init__(self, engine: "Engine", capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._queue: List[Event] = []
        self.peak_queue = 0
        self.total_waits = 0
        self.dead_skips = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        """Return an event that fires once a slot is granted."""
        event = Event(self.engine, source=self)
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            event.succeed(self)
        else:
            self.total_waits += 1
            self._queue.append(event)
            self.peak_queue = max(self.peak_queue, len(self._queue))
        return event

    def release(self) -> None:
        """Free one slot, waking the oldest *live* waiter if any.

        A waiter whose process was killed while queued leaves an
        abandoned event behind; handing it the slot would strand capacity
        on a dead process forever, so such entries are skipped (counted
        in ``dead_skips``) until a live waiter — or the free pool — takes
        the slot.
        """
        if self.in_use <= 0:
            raise SimulationError("release without matching acquire")
        while self._queue:
            event = self._queue.pop(0)
            if event.abandoned:
                self.dead_skips += 1
                continue
            # Hand the slot directly to the next waiter.
            event.succeed(self)
            return
        self.in_use -= 1


class Store:
    """An unbounded FIFO channel between processes."""

    __slots__ = ("engine", "_items", "_getters")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            event = self._getters.pop(0)
            if event.abandoned:
                continue  # the getter's process was killed while queued
            event.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        event = Event(self.engine, source=self)
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event


class Engine:
    """The simulation kernel: a calendar queue of (time, seq, task)."""

    def __init__(self) -> None:
        self.now: float = 0
        self._calendar: list = []
        self._sequence = itertools.count()
        self.events_processed = 0
        self._fault_hooks: dict = {}
        #: Live (not-yet-done) processes in creation order; the guard's
        #: deadlock dump and :meth:`blocked_processes` read this.
        self._live: Dict[Process, None] = {}
        self._guard: Optional[Any] = None

    # -- guard attachment (``repro.guard``) ---------------------------------
    def attach_guard(self, guard: Any) -> None:
        """Install a guard object observing the event loop.

        The guard must provide ``before_event(engine)`` (called once per
        dispatched event, after ``now`` advances) and ``on_drain(engine)``
        (called when the calendar empties).  An optional
        ``on_attach(engine)`` is called here.  One guard per engine.
        """
        if self._guard is not None:
            raise SimulationError("a guard is already attached")
        self._guard = guard
        on_attach = getattr(guard, "on_attach", None)
        if on_attach is not None:
            on_attach(self)

    def detach_guard(self) -> None:
        self._guard = None

    @property
    def guard(self) -> Optional[Any]:
        return self._guard

    def live_processes(self) -> List[Process]:
        """Every registered process that has not finished."""
        return list(self._live)

    def blocked_processes(self) -> List[Process]:
        """Live processes currently waiting on an event/resource/process
        (as opposed to being scheduled on the calendar)."""
        return [process for process in self._live
                if process.waiting_on is not None]

    # -- fault-injection hook bus -------------------------------------------
    def add_fault_hook(self, site: str, hook: Callable) -> None:
        """Register a fault hook at a named seam (one hook per site).

        Model code polls seams via :meth:`fault_hook`; with no hook the
        poll is a single empty-dict check, so an uninstrumented run pays
        no simulated time and (near) no host time.
        """
        if site in self._fault_hooks:
            raise SimulationError(f"fault hook already installed at {site!r}")
        self._fault_hooks[site] = hook

    def remove_fault_hook(self, site: str) -> None:
        self._fault_hooks.pop(site, None)

    def fault_hook(self, site: str) -> Optional[Callable]:
        """The hook installed at ``site``, or None (fast path)."""
        if not self._fault_hooks:
            return None
        return self._fault_hooks.get(site)

    # -- scheduling internals ------------------------------------------------
    def _schedule(self, when: float, process: Process, value: Any) -> None:
        heapq.heappush(self._calendar, (when, next(self._sequence), process, value))

    def _schedule_event(self, when: float, event: Event) -> None:
        heapq.heappush(self._calendar, (when, next(self._sequence), event, None))

    # -- public API ----------------------------------------------------------
    def timeout(self, delay: float) -> Timeout:
        """An event that fires ``delay`` cycles from now."""
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a process starting this cycle."""
        return Process(self, generator, name=name)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    def store(self) -> Store:
        return Store(self)

    def run(self, until: Optional[float] = None) -> float:
        """Drive the calendar until exhaustion or ``until`` cycles.

        Returns the final simulation time.
        """
        if self._guard is not None:
            return self._run_guarded(until)
        while self._calendar:
            when, _seq, task, value = self._calendar[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._calendar)
            self.now = when
            self.events_processed += 1
            if isinstance(task, Process):
                if not task.done:   # killed processes may leave stale entries
                    task._step(value)
            else:  # a plain Event scheduled by Timeout
                task.succeed(value)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def _run_guarded(self, until: Optional[float] = None) -> float:
        """The :meth:`run` loop with the attached guard in the loop.

        Identical event dispatch — the guard only *observes* (budgets,
        stall/deadlock detection, cadence-sampled invariants), so
        simulated time is bit-identical to an unguarded run; it signals
        trouble by raising ``repro.guard`` errors out of this loop.
        """
        guard = self._guard
        while self._calendar:
            when, _seq, task, value = self._calendar[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._calendar)
            self.now = when
            self.events_processed += 1
            guard.before_event(self)
            if isinstance(task, Process):
                if not task.done:
                    task._step(value)
            else:
                task.succeed(value)
        guard.on_drain(self)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: register ``generator``, run to completion, return value."""
        process = self.process(generator, name=name)
        self.run()
        if not process.done:
            raise SimulationError(f"process {process.name!r} deadlocked")
        return process.result
