"""Experiment discovery: turn ``BENCH`` declarations into specs.

The registry is the single source of truth for which paper artifacts
(HALO Figures 3-13, Tables 1/4, and the §3.4/§4.7 studies) the repo
reproduces; the CLI, the benchmark harness, and the docs catalog all
read from it.

Every module listed in ``repro.analysis.experiments.__all__`` that
exposes a ``BENCH`` dict plus ``bench_run``/``bench_report`` functions
becomes an :class:`~repro.runner.schema.ExperimentSpec`.  Discovery is
purely declarative — the registry never executes experiment code — so
``python -m repro list`` stays instant no matter how heavy the
experiments are.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterable, List

from .schema import ExperimentSpec, GridPoint, validate_bench

EXPERIMENTS_PACKAGE = "repro.analysis.experiments"

_cache: Dict[str, ExperimentSpec] = {}


class UnknownExperimentError(KeyError):
    """``--only``/``run`` named an experiment the registry doesn't have."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.name = name
        self.known = sorted(known)
        super().__init__(
            f"unknown experiment {name!r}; known: {', '.join(self.known)}")


class ExperimentLoadError(RuntimeError):
    """An experiment module failed to import or register.

    Raised instead of the raw ``ImportError``/``AttributeError`` so the
    failing *module* is named: a syntax error in one experiment file
    otherwise surfaces as an opaque discovery failure for the whole CLI.
    """

    def __init__(self, module_name: str, cause: BaseException) -> None:
        self.module_name = module_name
        super().__init__(
            f"failed to load experiment module {module_name!r}: "
            f"{type(cause).__name__}: {cause}")


def _spec_from_module(module_name: str) -> ExperimentSpec:
    try:
        module = importlib.import_module(module_name)
    except Exception as exc:
        raise ExperimentLoadError(module_name, exc) from exc
    bench = getattr(module, "BENCH", None)
    if bench is None:
        raise ValueError(f"{module_name} has no BENCH declaration")
    validate_bench(module_name, bench)
    for hook in ("bench_run", "bench_report"):
        if not callable(getattr(module, hook, None)):
            raise ValueError(f"{module_name} is missing {hook}()")
    grid = tuple(GridPoint(label, dict(params),
                           dict(quick) if quick is not None else None)
                 for label, params, quick in bench["grid"])
    return ExperimentSpec(
        name=bench["name"],
        artifact=bench["artifact"],
        slug=bench["slug"],
        title=bench["title"],
        module=module_name,
        grid=grid,
        run=module.bench_run,
        report=module.bench_report,
    )


def discover(refresh: bool = False) -> Dict[str, ExperimentSpec]:
    """All registered experiments, keyed by CLI name, in package order."""
    global _cache
    if _cache and not refresh:
        return dict(_cache)
    package = importlib.import_module(EXPERIMENTS_PACKAGE)
    specs: Dict[str, ExperimentSpec] = {}
    for short_name in package.__all__:
        spec = _spec_from_module(f"{EXPERIMENTS_PACKAGE}.{short_name}")
        if spec.name in specs:
            raise ValueError(
                f"duplicate experiment name {spec.name!r} "
                f"({specs[spec.name].module} vs {spec.module})")
        specs[spec.name] = spec
    _cache = specs
    return dict(specs)


def get_experiment(name: str) -> ExperimentSpec:
    specs = discover()
    try:
        return specs[name]
    except KeyError:
        raise UnknownExperimentError(name, specs) from None


def resolve_names(only: Iterable[str] = ()) -> List[ExperimentSpec]:
    """Specs for ``only`` (registry order), or all when ``only`` is empty.

    Raises :class:`UnknownExperimentError` on the first bad name so a
    typo in ``--only fig9`` fails loudly instead of silently running
    nothing.
    """
    specs = discover()
    wanted = list(only)
    if not wanted:
        return list(specs.values())
    for name in wanted:
        if name not in specs:
            raise UnknownExperimentError(name, specs)
    wanted_set = set(wanted)
    return [spec for name, spec in specs.items() if name in wanted_set]
