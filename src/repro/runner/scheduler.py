"""The run scheduler: shard grid points across processes, replay cache.

Execution model (HALO §6 evaluates by parameter sweep; this is the sweep
engine):

1. :func:`plan_runs` expands the selected experiments into
   :class:`~repro.runner.schema.RunSpec` units — one per active grid
   point — each with a deterministic seed derived from
   ``sha256(experiment, label)`` so results never depend on worker
   count or completion order.
2. :func:`execute` answers what it can from the
   :class:`~repro.runner.cache.ResultCache`, then runs the misses —
   inline for ``jobs=1``, otherwise on a
   :class:`concurrent.futures.ProcessPoolExecutor`.  Workers receive
   only ``(experiment, label, params, seed)`` and re-resolve the
   callable from the registry in their own process, so nothing
   unpicklable ever crosses the process boundary.
3. Per-experiment reports are rendered *in grid order* from the
   collected payloads, so the output text is identical whatever the
   interleaving was.

Runner metrics (``runner.cache.hits``, ``runner.cache.misses``,
``runner.run.wall_seconds``, ...) are published through a
:class:`repro.obs.MetricsRegistry` and included in the ``--json``
export.

Campaign hardening (the harness safety net, layer 2 — see
``docs/MODELING.md`` §9): per-run wall-clock budgets and bounded
retries via the supervised pool (:mod:`repro.runner.pool`), an
incremental completion journal (:mod:`repro.runner.journal`) behind
``--resume``, and SIGINT graceful drain that flushes partial results
before exiting nonzero.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import signal
import threading
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..obs import MetricsRegistry
from .cache import ResultCache
from .journal import RunJournal, default_journal_path
from .pool import classify_failure, run_supervised
from .registry import get_experiment, resolve_names
from .schema import ExperimentReport, ExperimentSpec, RunResult, RunSpec

#: Histogram bounds for per-run wall time, in seconds (the obs default
#: buckets are cycle-scaled; experiment runs live on 10ms–500s scales).
WALL_SECONDS_BUCKETS = tuple(0.01 * (2 ** exp) for exp in range(16))


def derive_seed(experiment: str, label: str) -> int:
    """Deterministic per-run seed: a pure function of the run identity.

    Uses SHA-256, not :func:`hash`, so the value is stable across
    processes and interpreter restarts (``PYTHONHASHSEED`` never leaks
    into results).  Experiments whose parameters already pin their seeds
    may ignore it; stochastic ones fold it in.
    """
    digest = hashlib.sha256(f"{experiment}\x00{label}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def plan_runs(specs: Sequence[ExperimentSpec], quick: bool = False,
              cache: Optional[ResultCache] = None) -> List[RunSpec]:
    """Expand experiments into runnable units, with cache keys attached."""
    runs: List[RunSpec] = []
    for spec in specs:
        for label, params in spec.points(quick):
            seed = derive_seed(spec.name, label)
            key = (cache.key(spec.name, label, params, seed)
                   if cache is not None else "")
            runs.append(RunSpec(experiment=spec.name, label=label,
                                params=params, seed=seed, cache_key=key))
    return runs


def _execute_payload(experiment: str, label: str, params: Dict[str, Any],
                     seed: int):
    """Worker entry point: resolve the hook in-process and run it."""
    spec = get_experiment(experiment)
    start = time.perf_counter()
    payload = spec.run(label, params, seed)
    return payload, time.perf_counter() - start


@dataclass
class RunFailure:
    """One grid point that crashed, as a structured record.

    A crashing experiment must not abort the whole bench invocation: the
    remaining runs finish, and the failure surfaces here — name, label,
    exception type, message, and the worker-side traceback — plus a
    nonzero CLI exit code.
    """

    experiment: str
    label: str
    error_type: str
    message: str
    traceback: str
    worker: str = "inline"
    #: Supervisor classification: crash / timeout / livelock / error.
    failure_kind: str = ""

    def __post_init__(self) -> None:
        if not self.failure_kind:
            self.failure_kind = classify_failure(self.error_type)

    @property
    def run_id(self) -> str:
        return f"{self.experiment}/{self.label}"

    @classmethod
    def from_exception(cls, spec_run: RunSpec, exc: BaseException,
                       worker: str) -> "RunFailure":
        return cls(
            experiment=spec_run.experiment,
            label=spec_run.label,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(traceback_module.format_exception(
                type(exc), exc, exc.__traceback__)),
            worker=worker,
        )

    def to_json_dict(self) -> Dict[str, str]:
        return {
            "experiment": self.experiment,
            "label": self.label,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "worker": self.worker,
            "failure_kind": self.failure_kind,
        }

    def render(self) -> str:
        return (f"FAILED {self.run_id} ({self.worker}): "
                f"{self.error_type}: {self.message}")


class BenchFailedError(RuntimeError):
    """Raised by strict callers when a bench invocation had failed runs."""

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        self.failures = list(failures)
        super().__init__("; ".join(f.render() for f in self.failures))


@dataclass
class BenchSummary:
    """Everything one ``repro bench`` invocation produced."""

    reports: List[ExperimentReport]
    results: List[RunResult]
    jobs: int
    quick: bool
    wall_s: float
    cache_hits: int
    cache_misses: int
    cache_dir: Optional[str]
    fingerprint: Optional[str]
    metrics: Dict[str, object] = field(default_factory=dict)
    failures: List[RunFailure] = field(default_factory=list)
    #: True when SIGINT cut the campaign short: in-flight runs were
    #: drained and journaled, queued ones never started.
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures and not self.interrupted

    @property
    def run_seconds(self) -> float:
        """Sum of per-run times (≥ wall time once runs parallelise)."""
        return sum(result.wall_s for result in self.results)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "quick": self.quick,
            "interrupted": self.interrupted,
            "wall_s": round(self.wall_s, 6),
            "run_seconds": round(self.run_seconds, 6),
            "cache": {
                "dir": self.cache_dir,
                "fingerprint": self.fingerprint,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "runs": [result.meta_dict() for result in self.results],
            "failures": [failure.to_json_dict()
                         for failure in self.failures],
            "reports": {
                report.name: {
                    "artifact": report.artifact,
                    "slug": report.slug,
                    "text": report.text,
                    "sha256": hashlib.sha256(
                        report.text.encode()).hexdigest(),
                }
                for report in self.reports
            },
            "metrics": self.metrics,
        }

    def render_footer(self) -> str:
        cached = (f"{self.cache_hits} cache hits, "
                  f"{self.cache_misses} executed")
        failed = (f" | {len(self.failures)} FAILED"
                  if self.failures else "")
        interrupted = " | INTERRUPTED (resume with --resume)" \
            if self.interrupted else ""
        return (f"bench summary: {len(self.results)} runs "
                f"({cached}) across {len(self.reports)} experiments | "
                f"jobs={self.jobs} wall={self.wall_s:.2f}s "
                f"cpu-run-time={self.run_seconds:.2f}s{failed}{interrupted}")


def execute(specs: Sequence[ExperimentSpec], *, jobs: int = 1,
            quick: bool = False, cache: Optional[ResultCache] = None,
            use_cache: bool = True,
            metrics: Optional[MetricsRegistry] = None,
            progress: Optional[Callable[[str], None]] = None,
            timeout_s: Optional[float] = None, retries: int = 0,
            journal: Optional[RunJournal] = None, resume: bool = False
            ) -> BenchSummary:
    """Run ``specs`` and return rendered reports plus run metadata.

    ``use_cache=False`` (``--no-cache``) forces recomputation but still
    *stores* fresh results, so the next cached invocation benefits.
    ``jobs=1`` executes inline (no pool) — the reference ordering that
    parallel runs must reproduce exactly.

    Hardening knobs:

    * ``timeout_s``/``retries`` switch execution to the supervised pool
      (:mod:`repro.runner.pool`): one killable process per run, hung
      runs terminated at the deadline and retried with backoff up to
      ``retries`` times before becoming a :class:`RunFailure`.
    * ``journal`` records every completion incrementally (crash-safe);
      with ``resume=True``, grid points the journal marks ``ok`` under
      the current cache key are served from the result cache and
      skipped even when ``use_cache`` is off.
    * SIGINT (main thread only) triggers a graceful drain: no new runs
      dispatch, in-flight runs finish and are journaled, and the
      summary comes back with ``interrupted=True`` so the CLI can exit
      130 — re-running with ``--resume`` picks up where the drain
      stopped.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    wall_hist = metrics.histogram("runner.run.wall_seconds",
                                  bounds=WALL_SECONDS_BUCKETS)
    hit_counter = metrics.counter("runner.cache.hits")
    miss_counter = metrics.counter("runner.cache.misses")
    metrics.gauge("runner.jobs").set(jobs)
    say = progress or (lambda _line: None)

    started = time.perf_counter()
    runs = plan_runs(specs, quick=quick, cache=cache)
    metrics.counter("runner.runs.total").inc(len(runs))

    outcomes: Dict[str, RunResult] = {}
    pending: List[RunSpec] = []
    for spec_run in runs:
        entry = None
        journaled_ok = (resume and journal is not None
                        and journal.completed_ok(spec_run.run_id,
                                                 spec_run.cache_key))
        if cache is not None and (use_cache or journaled_ok):
            # A journal "ok" alone is not a result: the payload must
            # still come from the cache.  A journaled run whose cache
            # entry is gone simply re-runs.
            entry = cache.load(spec_run)
        if entry is not None:
            hit_counter.inc()
            worker = "resume" if (journaled_ok and not use_cache) \
                else "cache"
            outcomes[spec_run.run_id] = RunResult(
                experiment=spec_run.experiment, label=spec_run.label,
                params=spec_run.params, seed=spec_run.seed,
                payload=entry["payload"], wall_s=entry.get("wall_s", 0.0),
                cache_hit=True, worker=worker)
            if journal is not None:
                journal.record_ok(spec_run.run_id, spec_run.cache_key,
                                  entry.get("wall_s", 0.0), worker)
            say(f"{spec_run.run_id}: cache hit")
        else:
            miss_counter.inc()
            pending.append(spec_run)

    def _finish(spec_run: RunSpec, payload: Any, wall: float,
                worker: str) -> None:
        wall_hist.observe(wall)
        outcomes[spec_run.run_id] = RunResult(
            experiment=spec_run.experiment, label=spec_run.label,
            params=spec_run.params, seed=spec_run.seed, payload=payload,
            wall_s=wall, cache_hit=False, worker=worker)
        if cache is not None:
            cache.store(spec_run, payload, wall)
        if journal is not None:
            journal.record_ok(spec_run.run_id, spec_run.cache_key, wall,
                              worker)
        say(f"{spec_run.run_id}: ran in {wall:.2f}s ({worker})")

    failures: List[RunFailure] = []
    failed_counter = metrics.counter("runner.runs.failed")

    def _record_failure(failure: RunFailure, spec_run: RunSpec) -> None:
        failed_counter.inc()
        failures.append(failure)
        if journal is not None:
            journal.record_failure(spec_run.run_id, spec_run.cache_key,
                                   failure.error_type,
                                   failure_kind=failure.failure_kind)
        say(failure.render())

    def _fail(spec_run: RunSpec, exc: BaseException, worker: str) -> None:
        _record_failure(RunFailure.from_exception(spec_run, exc, worker),
                        spec_run)

    # SIGINT → graceful drain.  Handlers only install on the main thread
    # (the signal module refuses elsewhere); worker processes never see
    # this handler, and the supervised pool's children ignore SIGINT
    # outright so the drain stays in the supervisor's hands.
    stop_event = threading.Event()
    previous_handler = None
    on_main_thread = threading.current_thread() is threading.main_thread()
    if on_main_thread:
        def _handle_sigint(_signum, _frame) -> None:
            if stop_event.is_set():
                raise KeyboardInterrupt  # second Ctrl-C: stop insisting
            stop_event.set()
            say("interrupt: draining in-flight runs "
                "(Ctrl-C again to abort)")
        previous_handler = signal.signal(signal.SIGINT, _handle_sigint)

    try:
        if timeout_s is not None or retries > 0:
            workers = min(max(1, jobs), max(1, len(pending)))
            pool_outcomes, _skipped = run_supervised(
                pending, jobs=workers, timeout_s=timeout_s,
                retries=retries, should_stop=stop_event.is_set)
            for outcome in pool_outcomes:
                if outcome.ok:
                    _finish(outcome.spec, outcome.payload, outcome.wall_s,
                            worker=f"supervised-{workers}")
                else:
                    _record_failure(RunFailure(
                        experiment=outcome.spec.experiment,
                        label=outcome.spec.label,
                        error_type=outcome.error_type,
                        message=outcome.message,
                        traceback=outcome.traceback,
                        worker=f"supervised-{workers}",
                        failure_kind=outcome.failure_kind), outcome.spec)
        elif jobs <= 1 or len(pending) <= 1:
            for spec_run in pending:
                if stop_event.is_set():
                    break
                try:
                    payload, wall = _execute_payload(
                        spec_run.experiment, spec_run.label,
                        spec_run.params, spec_run.seed)
                except KeyboardInterrupt:
                    stop_event.set()
                    break
                except Exception as exc:
                    _fail(spec_run, exc, worker="inline")
                    continue
                _finish(spec_run, payload, wall, worker="inline")
        else:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_payload, spec_run.experiment,
                                spec_run.label, spec_run.params,
                                spec_run.seed): spec_run
                    for spec_run in pending
                }
                remaining = set(futures)
                cancelled = False
                while remaining:
                    done, remaining = wait(remaining, timeout=0.25,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        spec_run = futures[future]
                        if future.cancelled():
                            continue
                        try:
                            payload, wall = future.result()
                        except Exception as exc:
                            # One worker crash must not abort the pool
                            # run; the rest of the sweep keeps executing.
                            _fail(spec_run, exc, worker=f"pool-{workers}")
                            continue
                        _finish(spec_run, payload, wall,
                                worker=f"pool-{workers}")
                    if stop_event.is_set() and not cancelled:
                        # Drain: cancel everything not yet started;
                        # already-running futures finish and record.
                        cancelled = True
                        for future in set(remaining):
                            if future.cancel():
                                remaining.discard(future)
    except KeyboardInterrupt:
        stop_event.set()
    finally:
        if on_main_thread:
            signal.signal(signal.SIGINT, previous_handler)

    interrupted = stop_event.is_set()
    failed_by_spec: Dict[str, List[RunFailure]] = {}
    for failure in failures:
        failed_by_spec.setdefault(failure.experiment, []).append(failure)

    reports: List[ExperimentReport] = []
    all_results: List[RunResult] = []
    for spec in specs:
        points = spec.points(quick)
        spec_results = [outcomes[f"{spec.name}/{label}"]
                        for label, _params in points
                        if f"{spec.name}/{label}" in outcomes]
        spec_failures = failed_by_spec.get(spec.name, ())
        if spec_failures:
            # Partial payloads would feed the report hook a grid it never
            # expects; render the failure record instead.
            text = "\n".join(
                [f"{spec.name}: {len(spec_failures)} run(s) failed"]
                + [f"  {failure.render()}" for failure in spec_failures])
        elif interrupted and len(spec_results) < len(points):
            text = (f"{spec.name}: interrupted with "
                    f"{len(spec_results)}/{len(points)} runs complete "
                    f"(re-run with --resume to finish)")
        else:
            payloads = {result.label: result.payload
                        for result in spec_results}
            text = spec.report(payloads)
        reports.append(ExperimentReport(
            name=spec.name, artifact=spec.artifact, slug=spec.slug,
            text=text, runs=spec_results))
        all_results.extend(spec_results)

    executed = sum(1 for result in outcomes.values()
                   if not result.cache_hit)
    return BenchSummary(
        reports=reports,
        results=all_results,
        jobs=jobs,
        quick=quick,
        wall_s=time.perf_counter() - started,
        cache_hits=hit_counter.value,
        cache_misses=executed,
        cache_dir=str(cache.root) if cache is not None else None,
        fingerprint=cache.fingerprint if cache is not None else None,
        metrics=metrics.snapshot(),
        failures=failures,
        interrupted=interrupted,
    )


def run_benchmarks(only: Iterable[str] = (), *, jobs: int = 1,
                   quick: bool = False, use_cache: bool = True,
                   cache_dir: Optional[os.PathLike] = None,
                   metrics: Optional[MetricsRegistry] = None,
                   progress: Optional[Callable[[str], None]] = None,
                   timeout_s: Optional[float] = None, retries: int = 0,
                   resume: bool = False,
                   journal_path: Optional[os.PathLike] = None
                   ) -> BenchSummary:
    """The library face of ``python -m repro bench``.

    A journal is kept whenever ``resume`` or an explicit
    ``journal_path`` asks for one; its default location is derived from
    the campaign shape (experiments + mode + code fingerprint) under the
    cache root, so interrupted invocations of the *same* campaign find
    each other's progress automatically.
    """
    specs = resolve_names(only)
    cache = ResultCache(pathlib.Path(cache_dir) if cache_dir else None)
    journal: Optional[RunJournal] = None
    if resume or journal_path is not None:
        path = (pathlib.Path(journal_path) if journal_path is not None
                else default_journal_path(cache.root,
                                          [spec.name for spec in specs],
                                          quick, cache.fingerprint))
        journal = RunJournal(path).open_for(cache.fingerprint)
    try:
        return execute(specs, jobs=jobs, quick=quick, cache=cache,
                       use_cache=use_cache, metrics=metrics,
                       progress=progress, timeout_s=timeout_s,
                       retries=retries, journal=journal, resume=resume)
    finally:
        if journal is not None:
            journal.close()


def run_for_bench(name: str, quick: bool = False):
    """Execute one experiment serially, uncached; return
    ``({label: payload}, report_text)``.

    This is what the ``benchmarks/bench_*.py`` thin wrappers call: they
    need real (timed) execution and direct access to the payloads for
    their shape assertions.
    """
    spec = get_experiment(name)
    summary = execute([spec], jobs=1, quick=quick, cache=None,
                      use_cache=False)
    if summary.failures:
        # Benchmark wrappers want the old strict contract: a crashing
        # experiment raises instead of returning partial payloads.
        raise BenchFailedError(summary.failures)
    payloads = {result.label: result.payload
                for result in summary.results}
    return payloads, summary.reports[0].text


def default_reports_dir() -> pathlib.Path:
    """The checked-in report archive (``benchmarks/reports``).

    Resolved relative to the repository root (two levels above the
    ``repro`` package) so the benchmark wrappers and ``--reports`` agree
    on one location regardless of the current working directory.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    return package_root.parent.parent / "benchmarks" / "reports"


def archive_report(slug: str, text: str,
                   directory: os.PathLike) -> pathlib.Path:
    """Write one rendered report as ``<directory>/<slug>.txt``.

    The single report-path code path: ``write_reports`` (the ``--reports``
    CLI flag) and ``benchmarks/_common.record_report`` (the pytest
    wrappers) both land here, so archived perf numbers and experiment
    reports can never disagree about naming or layout.
    """
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{slug}.txt"
    path.write_text(text + "\n")
    return path


def write_reports(summary: BenchSummary,
                  directory: os.PathLike) -> List[pathlib.Path]:
    """Archive each experiment's rendered report as ``<slug>.txt``."""
    return [archive_report(report.slug, report.text, directory)
            for report in summary.reports]


def default_jobs() -> int:
    """Default ``--jobs``: one worker per CPU."""
    return max(1, os.cpu_count() or 1)
