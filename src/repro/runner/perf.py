"""``repro bench --perf`` — the pinned engine-performance microbench suite.

Public contract: eight microbenches track the simulator's own speed (not
the paper's modelled results) so every PR leaves a ``BENCH_<n>.json``
footprint in the perf trajectory:

* ``engine_churn`` — pure DES calendar stress: 16 worker processes
  ping-ponging through a short-delay latency mix while 10k far-future
  timeouts sit parked in the calendar.  Exercises schedule/pop/wake and
  nothing else.
* ``cache_replay`` — the software-lookup hot loop: thousands of lookups
  over a small hot key set on a warm table, run through the batched
  trace-replay fast path (:class:`repro.sim.replay.TraceReplay`).
* ``fig09_single_lookup`` — the model-of-record serial lookup path (one
  trace captured, priced, and yielded per key), sized like a Figure 9
  grid point.
* ``multicore_step`` — several software cores interleaving on one shared
  engine via :func:`repro.exec.cores.run_cores`, one lookup per DES hop.
* ``multicore_batched`` — the same collocated shape but *streamed*:
  batched capture plus windowed replay between interaction points,
  against the per-key composition as its reference side.
* ``vector_pricing`` — raw :meth:`repro.sim.core.CoreModel.execute_batch`
  pricing throughput, numpy kernels against the pure-Python fallback
  (``events`` counts priced traces — no engine runs here).
* ``shard_scaling`` — the sharded-cluster path
  (:func:`repro.cluster.run_cluster`, inline dispatch): a 4-shard
  cluster over a fixed stream, against the same stream through one
  monolithic shard as the reference side.  Tracks the host cost of
  standing up and running N independent shard simulations.
* ``emc_churn`` — the cache-policy hot loop: the high-churn workload
  scenario (:class:`repro.workloads.churn.ChurnEngine`) streamed through
  a policy-driven :class:`repro.classifier.emc.ExactMatchCache`
  lookup/install loop.  Times packet generation plus admission/eviction
  book-keeping — the per-packet host cost the ``cache_churn`` experiment
  pays per cell.

``engine_churn`` and ``cache_replay`` also run on the *frozen
pre-campaign engine* vendored in :mod:`repro.runner._legacy_engine`;
``multicore_batched`` and ``vector_pricing`` time their slow-mode
counterparts in the same process.  All four record the ratio as
``speedup_vs_legacy``.  Because both sides execute in the same process
on the same host, that ratio is robust to machine speed in a way
absolute events/sec is not — it is the number the CI regression gate
trusts first.

Measurement protocol: ``time.process_time`` (immune to scheduler
preemption inflating wall time), interleaved repeats, min-of-N (the
minimum is the least-noise estimator for a deterministic workload).
Snapshots additionally carry a host calibration loop so absolute
numbers can be roughly normalised across machines.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

PERF_SCHEMA_VERSION = 4

#: Default location for committed snapshots (``BENCH_<n>.json``).
DEFAULT_PERF_DIR = "benchmarks/perf"

#: Names every snapshot must contain, in suite order.
BENCH_NAMES = ("engine_churn", "cache_replay", "fig09_single_lookup",
               "multicore_step", "multicore_batched", "vector_pricing",
               "shard_scaling", "emc_churn")

#: Required bench names per schema version.  Snapshots validate against
#: the schema they were written with, so the committed trajectory stays
#: checkable as the suite grows.
NAMES_BY_SCHEMA = {
    1: ("engine_churn", "cache_replay", "fig09_single_lookup",
        "multicore_step"),
    2: ("engine_churn", "cache_replay", "fig09_single_lookup",
        "multicore_step", "multicore_batched", "vector_pricing"),
    3: ("engine_churn", "cache_replay", "fig09_single_lookup",
        "multicore_step", "multicore_batched", "vector_pricing",
        "shard_scaling"),
    4: BENCH_NAMES,
}


# ---------------------------------------------------------------------------
# measurement core


@dataclass
class BenchResult:
    """One microbench's measured numbers (the ``benches.<name>`` record)."""

    name: str
    events: int                 # engine events processed (current engine)
    lookups: int                # table lookups performed (0 if N/A)
    cycles: float               # simulated cycles elapsed
    wall_s: float               # best-of-N process time, current engine
    legacy_wall_s: Optional[float] = None   # reference side: same workload
                                            # on the frozen engine or in the
                                            # bench's slow mode
    repeats: int = 1

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s else 0.0

    @property
    def lookups_per_sec(self) -> Optional[float]:
        if not self.lookups:
            return None
        return self.lookups / self.wall_s if self.wall_s else 0.0

    @property
    def speedup_vs_legacy(self) -> Optional[float]:
        if self.legacy_wall_s is None or not self.wall_s:
            return None
        return self.legacy_wall_s / self.wall_s

    def to_json_dict(self, calibration: float) -> Dict[str, object]:
        return {
            "name": self.name,
            "events": self.events,
            "lookups": self.lookups,
            "cycles": self.cycles,
            "wall_s": self.wall_s,
            "legacy_wall_s": self.legacy_wall_s,
            "repeats": self.repeats,
            "events_per_sec": self.events_per_sec,
            "lookups_per_sec": self.lookups_per_sec,
            "speedup_vs_legacy": self.speedup_vs_legacy,
            # Host-normalised rate: events/sec divided by this host's
            # calibration ops/sec, so snapshots from different machines
            # land in the same ballpark.
            "events_per_cal_op": (self.events_per_sec / calibration
                                  if calibration else None),
        }


def _min_of(thunks: List[Callable[[], float]], repeats: int) -> List[float]:
    """Interleaved min-of-N over a list of timed thunks.

    Interleaving (A B A B ...) rather than batching (A A B B) means a
    transient host slowdown hits both sides instead of biasing one.
    Collection runs between timings, never during one — a cycle-GC pass
    landing inside a single run is the dominant noise source here.
    """
    import gc

    best = [float("inf")] * len(thunks)
    was_enabled = gc.isenabled()
    try:
        for _ in range(repeats):
            for index, thunk in enumerate(thunks):
                gc.collect()
                gc.disable()
                try:
                    elapsed = thunk()
                finally:
                    if was_enabled:
                        gc.enable()
                if elapsed < best[index]:
                    best[index] = elapsed
    finally:
        if was_enabled:
            gc.enable()
    return best


def host_calibration(spins: int = 1_000_000, repeats: int = 5) -> float:
    """Ops/sec of a fixed pure-Python loop — a crude host speed unit.

    Best-of-``repeats``: every normalised rate divides by this number,
    so one slow calibration pass would shift *all* benches in lockstep.
    Used only to *normalise* absolute rates across machines; same-host
    comparisons (the CI gate, ``speedup_vs_legacy``) never consult it.
    """
    best = float("inf")
    for _ in range(repeats):
        accumulator = 0
        t0 = time.process_time()
        for value in range(spins):
            accumulator += value & 7
        elapsed = time.process_time() - t0
        del accumulator
        if elapsed < best:
            best = elapsed
    return spins / best if best else 0.0


# ---------------------------------------------------------------------------
# the microbenches


@dataclass
class _Shape:
    """Workload sizes for one suite flavour (full vs ``--quick``)."""

    churn_workers: int
    churn_hops: int
    churn_parked: int
    replay_lookups: int
    fig09_lookups: int
    multicore_cores: int
    multicore_lookups: int
    repeats: int
    #: Per-core stream length for ``multicore_batched`` (sized separately
    #: from ``multicore_lookups``: batching needs longer streams before
    #: its fixed costs amortise).
    batched_lookups: int = 400
    #: Captured-trace volume for ``vector_pricing``.
    pricing_lookups: int = 8000
    #: Cluster geometry + stream volume for ``shard_scaling``.
    shard_count: int = 4
    shard_flows: int = 128
    shard_lookups: int = 2000
    #: Churn-stream volume + EMC capacity for ``emc_churn``.
    emc_churn_packets: int = 20_000
    emc_churn_entries: int = 512


FULL_SHAPE = _Shape(churn_workers=16, churn_hops=2000, churn_parked=10_000,
                    replay_lookups=8000, fig09_lookups=2000,
                    multicore_cores=4, multicore_lookups=400, repeats=5,
                    batched_lookups=800, pricing_lookups=8000,
                    shard_count=4, shard_flows=128, shard_lookups=2000,
                    emc_churn_packets=20_000, emc_churn_entries=512)
# Quick walls must stay >= ~50ms per bench: the CI gate compares rates
# from this flavour, and few-millisecond timings swing tens of percent.
# "Quick" trims repeats and lookup volume, not workload character.
QUICK_SHAPE = _Shape(churn_workers=16, churn_hops=2000, churn_parked=10_000,
                     replay_lookups=4000, fig09_lookups=800,
                     multicore_cores=2, multicore_lookups=200, repeats=3,
                     batched_lookups=800, pricing_lookups=8000,
                     shard_count=4, shard_flows=128, shard_lookups=1000,
                     emc_churn_packets=10_000, emc_churn_entries=256)

#: Latency mix the churn workers cycle through: L1 / L2 / LLC / DRAM-ish.
_CHURN_LATENCIES = (4, 12, 40, 200)


def _churn_workload(engine_module, workers: int, hops: int,
                    parked: int) -> Tuple[float, float, int]:
    """Run the churn workload on ``engine_module.Engine``; return
    (process_time, engine.now, events_processed)."""
    engine = engine_module.Engine()
    latencies = _CHURN_LATENCIES

    def worker(offset: int):
        index = offset
        count = len(latencies)
        for _ in range(hops):
            yield engine.timeout(latencies[index % count])
            index += 1

    def parker():
        # Park far-future timeouts so the calendar stays deep the whole
        # run — the overflow/far-future path must not decay pop cost.
        for k in range(parked):
            engine.timeout(50_000_000 + k)
        return
        yield  # pragma: no cover - makes this a generator

    t0 = time.process_time()
    engine.process(parker())
    for offset in range(workers):
        engine.process(worker(offset))
    engine.run()
    elapsed = time.process_time() - t0
    return elapsed, engine.now, engine.events_processed


def bench_engine_churn(shape: _Shape) -> BenchResult:
    from . import _legacy_engine
    from ..sim import engine as live_engine

    current: Dict[str, float] = {}

    def run_current() -> float:
        elapsed, now, events = _churn_workload(
            live_engine, shape.churn_workers, shape.churn_hops,
            shape.churn_parked)
        current["now"], current["events"] = now, events
        return elapsed

    def run_legacy() -> float:
        elapsed, _now, _events = _churn_workload(
            _legacy_engine, shape.churn_workers, shape.churn_hops,
            shape.churn_parked)
        return elapsed

    wall, legacy_wall = _min_of([run_current, run_legacy], shape.repeats)
    return BenchResult(name="engine_churn", events=int(current["events"]),
                       lookups=0, cycles=current["now"], wall_s=wall,
                       legacy_wall_s=legacy_wall, repeats=shape.repeats)


def _replay_setup(lookups: int, entries: int = 64, hot: int = 32):
    """A warm capacity-256 table plus a hot-key stream (L1-resident)."""
    import random

    from ..core import HaloSystem

    rng = random.Random(29)
    system = HaloSystem()
    table = system.create_table(256, name="perf_replay")
    inserted = []
    for index in range(entries):
        key = rng.randbytes(16)
        if table.insert(key, index):
            inserted.append(key)
    system.warm_table(table)
    hot_keys = inserted[:hot]
    keys = [hot_keys[rng.randrange(len(hot_keys))] for _ in range(lookups)]
    software = system.software_engine(0)
    for key in hot_keys:            # pull the hot set into L1
        software.lookup(table, key)
    return system, table, keys


def bench_cache_replay(shape: _Shape) -> BenchResult:
    """Batched replay vs the same lookups composed on the frozen engine."""
    from . import _legacy_engine
    from ..exec.backend import LookupOutcome

    current: Dict[str, float] = {}

    def run_current() -> float:
        system, table, keys = _replay_setup(shape.replay_lookups)
        backend = system.backend("software", batched=True)
        t0 = time.process_time()
        system.engine.run_process(backend.lookup_stream(table, keys))
        elapsed = time.process_time() - t0
        current["now"] = system.engine.now
        current["events"] = system.engine.events_processed
        return elapsed

    def run_legacy() -> float:
        # Faithful pre-campaign composition: one sub-generator per key,
        # one timeout per priced trace, on the vendored engine.
        system, table, keys = _replay_setup(shape.replay_lookups)
        software = system.software_engine(0)
        engine = _legacy_engine.Engine()

        def legacy_lookup(key):
            value, result = software.lookup(table, key)
            if result.cycles:
                yield engine.timeout(result.cycles)
            return LookupOutcome(value=value, found=value is not None,
                                 cycles=result.cycles)

        def legacy_stream():
            outcomes = []
            for key in keys:
                outcome = yield from legacy_lookup(key)
                outcomes.append(outcome)
            return outcomes

        t0 = time.process_time()
        engine.run_process(legacy_stream())
        return time.process_time() - t0

    wall, legacy_wall = _min_of([run_current, run_legacy], shape.repeats)
    return BenchResult(name="cache_replay", events=int(current["events"]),
                       lookups=shape.replay_lookups, cycles=current["now"],
                       wall_s=wall, legacy_wall_s=legacy_wall,
                       repeats=shape.repeats)


def bench_fig09_single_lookup(shape: _Shape) -> BenchResult:
    """The serial (model-of-record) lookup path at Figure 9 table scale."""
    from ..traffic.generator import random_keys

    current: Dict[str, float] = {}

    def run_current() -> float:
        from ..core import HaloSystem

        system = HaloSystem()
        table = system.create_table(1 << 12, name="perf_fig09")
        keys = random_keys(1 << 11, seed=17)
        for index, key in enumerate(keys):
            table.insert(key, index)
        system.warm_table(table)
        stream = [keys[i % len(keys)] for i in range(shape.fig09_lookups)]
        t0 = time.process_time()
        system.run_software_lookups(table, stream)
        elapsed = time.process_time() - t0
        current["now"] = system.engine.now
        current["events"] = system.engine.events_processed
        return elapsed

    (wall,) = _min_of([run_current], shape.repeats)
    return BenchResult(name="fig09_single_lookup",
                       events=int(current["events"]),
                       lookups=shape.fig09_lookups, cycles=current["now"],
                       wall_s=wall, repeats=shape.repeats)


def bench_multicore_step(shape: _Shape) -> BenchResult:
    """Several software cores interleaving on one shared engine."""
    from ..traffic.generator import random_keys

    current: Dict[str, float] = {}

    def run_current() -> float:
        from ..core import HaloSystem
        from ..exec.cores import CoreWorkload

        system = HaloSystem()
        table = system.create_table(1 << 10, name="perf_multicore")
        keys = random_keys(512, seed=31)
        for index, key in enumerate(keys):
            table.insert(key, index)
        system.warm_table(table)
        per_core = shape.multicore_lookups

        def worker(backend, offset: int):
            for i in range(per_core):
                yield from backend.lookup(table, keys[(offset + i)
                                                      % len(keys)])
            return per_core

        workloads = [
            CoreWorkload(backend="software", core_id=core,
                         program=lambda backend, core=core: worker(
                             backend, core * 97),
                         name=f"perf{core}")
            for core in range(shape.multicore_cores)
        ]
        t0 = time.process_time()
        system.run_cores(workloads)
        elapsed = time.process_time() - t0
        current["now"] = system.engine.now
        current["events"] = system.engine.events_processed
        return elapsed

    (wall,) = _min_of([run_current], shape.repeats)
    return BenchResult(name="multicore_step", events=int(current["events"]),
                       lookups=shape.multicore_cores
                       * shape.multicore_lookups,
                       cycles=current["now"], wall_s=wall,
                       repeats=shape.repeats)


def bench_multicore_batched(shape: _Shape) -> BenchResult:
    """Streamed collocated cores: windowed batched replay vs per-key hops.

    Both sides run on the *live* engine over the identical streamed
    workload — the reference side simply builds its backends with
    ``batched=False`` — so ``speedup_vs_legacy`` isolates exactly what
    the windowed replay buys concurrent software cores.
    """
    from ..traffic.generator import random_keys

    current: Dict[str, float] = {}

    def _run(batched: bool) -> Tuple[float, float, int]:
        from ..core import HaloSystem
        from ..exec.cores import CoreWorkload

        system = HaloSystem()
        table = system.create_table(1 << 10, name="perf_mc_batched")
        keys = random_keys(512, seed=37)
        for index, key in enumerate(keys):
            table.insert(key, index)
        system.warm_table(table)
        per_core = shape.batched_lookups
        workloads = [
            CoreWorkload(backend="software", core_id=core, table=table,
                         keys=[keys[(core * 97 + i) % len(keys)]
                               for i in range(per_core)],
                         stream=True,
                         backend_kwargs={"batched": batched},
                         name=f"perfb{core}")
            for core in range(shape.multicore_cores)
        ]
        t0 = time.process_time()
        system.run_cores(workloads)
        elapsed = time.process_time() - t0
        return elapsed, system.engine.now, system.engine.events_processed

    def run_current() -> float:
        elapsed, now, events = _run(True)
        current["now"], current["events"] = now, events
        return elapsed

    def run_legacy() -> float:
        elapsed, _now, _events = _run(False)
        return elapsed

    wall, legacy_wall = _min_of([run_current, run_legacy], shape.repeats)
    return BenchResult(name="multicore_batched",
                       events=int(current["events"]),
                       lookups=shape.multicore_cores
                       * shape.batched_lookups,
                       cycles=current["now"], wall_s=wall,
                       legacy_wall_s=legacy_wall, repeats=shape.repeats)


def bench_vector_pricing(shape: _Shape) -> BenchResult:
    """Raw ``execute_batch`` pricing throughput, numpy vs pure Python.

    Captures one trace per lookup (untimed) and then times only the
    batch pricing pass; the reference side forces the pure-Python
    fallback via ``REPRO_NO_NUMPY``.  No engine runs here, so ``events``
    counts priced traces.  On hosts without numpy both sides take the
    fallback and the speedup hovers at 1.0 by construction.
    """
    import os

    from ..hashtable.locking import READ_SIDE_CYCLES
    from ..sim import kernels

    current: Dict[str, float] = {}

    def _run(disable_numpy: bool) -> Tuple[float, float]:
        system, table, keys = _replay_setup(shape.pricing_lookups)
        software = system.software_engine(0)
        _values, traces = software.capture_lookups(table, keys)
        previous = os.environ.get(kernels.NUMPY_DISABLE_ENV)
        if disable_numpy:
            os.environ[kernels.NUMPY_DISABLE_ENV] = "1"
        try:
            t0 = time.process_time()
            results = software.core.execute_batch(
                traces, lock_cycles_each=READ_SIDE_CYCLES)
            elapsed = time.process_time() - t0
        finally:
            if disable_numpy:
                if previous is None:
                    del os.environ[kernels.NUMPY_DISABLE_ENV]
                else:
                    os.environ[kernels.NUMPY_DISABLE_ENV] = previous
        total = 0.0
        for result in results:
            total += result.cycles
        return elapsed, total

    def run_current() -> float:
        elapsed, cycles = _run(False)
        current["cycles"] = cycles
        return elapsed

    def run_legacy() -> float:
        elapsed, _cycles = _run(True)
        return elapsed

    wall, legacy_wall = _min_of([run_current, run_legacy], shape.repeats)
    return BenchResult(name="vector_pricing", events=shape.pricing_lookups,
                       lookups=shape.pricing_lookups,
                       cycles=current["cycles"], wall_s=wall,
                       legacy_wall_s=legacy_wall, repeats=shape.repeats)


def bench_shard_scaling(shape: _Shape) -> BenchResult:
    """Host cost of a sharded cluster vs one monolithic shard.

    Both sides run the identical stream through
    :func:`repro.cluster.run_cluster` with *inline* dispatch (no child
    processes — this times the simulations, not ``fork``): the current
    side splits it over ``shape.shard_count`` single-socket shards, the
    reference side runs one monolithic shard.  Same host, same stream,
    so ``speedup_vs_legacy`` tracks what per-shard setup and the split
    streams cost (or save) the simulator itself.
    """
    # Function-local import: runner sits below cluster in the layering
    # (cluster *uses* the pool), so the dependency stays call-time only.
    from ..cluster import ClusterConfig, run_cluster

    current: Dict[str, float] = {}

    def _run(shards: int) -> Tuple[float, float, int]:
        config = ClusterConfig(shards=shards, flows=shape.shard_flows,
                               lookups=shape.shard_lookups,
                               parallel=False, seed=53)
        t0 = time.process_time()
        result = run_cluster(config)
        elapsed = time.process_time() - t0
        return elapsed, result.makespan_cycles, result.total_lookups

    def run_current() -> float:
        elapsed, cycles, lookups = _run(shape.shard_count)
        current["cycles"], current["lookups"] = cycles, lookups
        return elapsed

    def run_legacy() -> float:
        elapsed, _cycles, _lookups = _run(1)
        return elapsed

    wall, legacy_wall = _min_of([run_current, run_legacy], shape.repeats)
    return BenchResult(name="shard_scaling",
                       events=int(current["lookups"]),
                       lookups=int(current["lookups"]),
                       cycles=current["cycles"], wall_s=wall,
                       legacy_wall_s=legacy_wall, repeats=shape.repeats)


def bench_emc_churn(shape: _Shape) -> BenchResult:
    """The cache-policy hot loop under the high-churn workload.

    Streams the ``high_churn`` scenario through a policy-driven EMC
    (LRU — the policy with per-packet book-keeping on both hits and
    installs, so the seam's overhead is fully exercised).  The timed
    loop covers packet generation, lookup, and install — the same
    per-packet host cost every ``cache_churn`` experiment cell pays.
    No engine runs here, so ``events`` counts packets and ``cycles``
    is zero.
    """
    from ..classifier.emc import ExactMatchCache
    from ..classifier.flow import FlowMask, make_flow
    from ..classifier.rules import Action, Rule
    from ..workloads import ChurnEngine, ChurnSpec

    rule = Rule(mask=FlowMask.exact(), match=make_flow(0),
                action=Action.output(0))

    def run_current() -> float:
        emc = ExactMatchCache(shape.emc_churn_entries, policy="lru")
        engine = ChurnEngine(ChurnSpec.high_churn(seed=41))
        t0 = time.process_time()
        for flow in engine.packets(shape.emc_churn_packets):
            if emc.lookup(flow) is None:
                emc.install(flow, rule)
        return time.process_time() - t0

    (wall,) = _min_of([run_current], shape.repeats)
    return BenchResult(name="emc_churn", events=shape.emc_churn_packets,
                       lookups=shape.emc_churn_packets, cycles=0.0,
                       wall_s=wall, repeats=shape.repeats)


_BENCHES: Dict[str, Callable[[_Shape], BenchResult]] = {
    "engine_churn": bench_engine_churn,
    "cache_replay": bench_cache_replay,
    "fig09_single_lookup": bench_fig09_single_lookup,
    "multicore_step": bench_multicore_step,
    "multicore_batched": bench_multicore_batched,
    "vector_pricing": bench_vector_pricing,
    "shard_scaling": bench_shard_scaling,
    "emc_churn": bench_emc_churn,
}
assert tuple(_BENCHES) == BENCH_NAMES


# ---------------------------------------------------------------------------
# suite driver + snapshot I/O


def run_perf_suite(quick: bool = False,
                   progress: Optional[Callable[[str], None]] = None,
                   ) -> Dict[str, object]:
    """Run the pinned suite; return the snapshot dict (see schema above)."""
    from .cache import code_fingerprint

    shape = QUICK_SHAPE if quick else FULL_SHAPE
    calibration = host_calibration()
    benches: Dict[str, Dict[str, object]] = {}
    for name in BENCH_NAMES:
        if progress:
            progress(f"perf: {name} ...")
        result = _BENCHES[name](shape)
        benches[name] = result.to_json_dict(calibration)
        if progress:
            rate = result.events_per_sec
            speed = result.speedup_vs_legacy
            suffix = f", {speed:.2f}x vs legacy" if speed else ""
            progress(f"perf: {name}: {rate:,.0f} events/s "
                     f"({result.wall_s:.3f}s{suffix})")
    return {
        "schema_version": PERF_SCHEMA_VERSION,
        "fingerprint": code_fingerprint(),
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "calibration_ops_per_sec": calibration,
        },
        "benches": benches,
    }


def next_snapshot_path(directory) -> pathlib.Path:
    """First free ``BENCH_<n>.json`` under ``directory``."""
    out_dir = pathlib.Path(directory)
    n = 0
    while (out_dir / f"BENCH_{n}.json").exists():
        n += 1
    return out_dir / f"BENCH_{n}.json"


def write_snapshot(snapshot: Dict[str, object], directory,
                   path: Optional[pathlib.Path] = None) -> pathlib.Path:
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    target = pathlib.Path(path) if path else next_snapshot_path(out_dir)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def validate_snapshot(snapshot: Dict[str, object]) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    version = snapshot.get("schema_version")
    if version not in NAMES_BY_SCHEMA:
        problems.append("schema_version mismatch")
    if not isinstance(snapshot.get("fingerprint"), str):
        problems.append("missing fingerprint")
    host = snapshot.get("host")
    if not isinstance(host, dict) or "calibration_ops_per_sec" not in host:
        problems.append("missing host calibration")
    benches = snapshot.get("benches")
    if not isinstance(benches, dict):
        problems.append("missing benches")
        return problems
    for name in NAMES_BY_SCHEMA.get(version, BENCH_NAMES):
        record = benches.get(name)
        if not isinstance(record, dict):
            problems.append(f"missing bench {name!r}")
            continue
        for key in ("events", "wall_s", "events_per_sec", "cycles",
                    "lookups", "repeats"):
            if key not in record:
                problems.append(f"{name}: missing {key!r}")
        if record.get("events", 0) <= 0:
            problems.append(f"{name}: no events processed")
        if record.get("wall_s", 0) <= 0:
            problems.append(f"{name}: non-positive wall time")
    return problems


def compare_snapshots(baseline: Dict[str, object],
                      candidate: Dict[str, object],
                      threshold: float = 0.25) -> List[str]:
    """CI regression gate: candidate vs committed baseline.

    Per bench, prefer ``speedup_vs_legacy`` (same-host relative, noise
    immune) and fall back to host-normalised events/sec.  A bench fails
    when its metric drops more than ``threshold`` below the baseline.
    Returns failure descriptions (empty = gate passes).
    """
    failures: List[str] = []
    base_benches = baseline.get("benches", {})
    cand_benches = candidate.get("benches", {})
    for name in BENCH_NAMES:
        base = base_benches.get(name)
        cand = cand_benches.get(name)
        if not base or not cand:
            failures.append(f"{name}: missing from "
                            f"{'baseline' if not base else 'candidate'}")
            continue
        if base.get("speedup_vs_legacy") and cand.get("speedup_vs_legacy"):
            metric = "speedup_vs_legacy"
        else:
            metric = "events_per_cal_op"
        base_value = base.get(metric) or 0.0
        cand_value = cand.get(metric) or 0.0
        if not base_value:
            continue
        drop = 1.0 - cand_value / base_value
        if drop > threshold:
            failures.append(
                f"{name}: {metric} regressed {drop:.0%} "
                f"({base_value:.3g} -> {cand_value:.3g}; "
                f"threshold {threshold:.0%})")
    return failures
