"""Calendar queues for the DES engine: the event-ordering data structure.

The engine's hot loop is *pop the earliest ``(time, seq, task, value)``
entry, dispatch, repeat* — every simulated cycle of every experiment goes
through it, so the calendar's constant factors dominate end-to-end speed.
Two implementations share one contract:

* :class:`HeapCalendar` — the original design: one global binary heap
  over all pending entries.  Every push/pop costs ``O(log N)`` tuple
  comparisons against the *whole* calendar.  Kept as the reference
  implementation (``Engine(calendar="heap")``) that the equivalence
  property suite replays against.
* :class:`BucketCalendar` — a slot/bucketed calendar: entries live in
  per-cycle buckets keyed on ``floor(time)``, and a much smaller overflow
  heap orders only the *occupied cycles*.  Scheduling into the current or
  a nearby cycle — the overwhelmingly common case: same-cycle wakes,
  zero-delay yields, cache-hit latencies a few hundred cycles out — is a
  dict probe plus a push into a tiny per-cycle heap (usually a single
  comparison, since sequence numbers arrive in increasing order).  Far-
  future timeouts pay one extra ``O(log C)`` push where ``C`` is the
  number of distinct occupied cycles, typically orders of magnitude
  smaller than the entry count.

Ordering contract (both implementations, bit-identical): entries pop in
strictly increasing ``(time, seq)`` order, where ``seq`` is the engine's
global insertion counter — events scheduled for the same time fire in
insertion order.  The bucket invariant that makes the split sound: every
entry in bucket ``c`` has ``floor(time) == c``, so its time is strictly
less than any entry of a higher bucket; within a bucket the per-cycle
heap restores the exact ``(time, seq)`` order, including fractional
times that share a floor.

Entries are plain tuples ``(time, seq, task, value)`` — ``seq`` is
globally unique, so a comparison never reaches the (uncomparable) task.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple

#: One calendar entry: (time, sequence, task, send-value).
Entry = Tuple[float, int, Any, Any]


class HeapCalendar:
    """The legacy flat binary heap — one heap over every pending entry.

    This is the pre-bucketing engine calendar, preserved verbatim as the
    model of record for ordering semantics.  The equivalence suite
    (``tests/sim/test_calendar_equivalence.py``) drives randomized
    schedules through this and :class:`BucketCalendar` and asserts
    identical execution orders.
    """

    __slots__ = ("_heap",)

    kind = "heap"

    def __init__(self) -> None:
        self._heap: List[Entry] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, when: float, seq: int, task: Any, value: Any) -> None:
        heappush(self._heap, (when, seq, task, value))

    def pop(self) -> Entry:
        return heappop(self._heap)

    def min_time(self) -> Optional[float]:
        """Earliest pending time, or ``None`` when empty."""
        return self._heap[0][0] if self._heap else None


class BucketCalendar:
    """Per-cycle buckets plus an overflow heap of occupied cycles.

    ``_buckets`` maps ``floor(time) -> per-cycle min-heap of entries``;
    ``_cycles`` is a min-heap holding each occupied cycle exactly once
    (pushed when its bucket is created, popped when it drains).  The
    common short-delay schedule is O(1): the target bucket already
    exists, and pushing a monotonically increasing ``(time, seq)`` onto
    its heap terminates after one comparison.  Pops cost ``O(log k)`` on
    the *bucket* size ``k`` — independent of how many far-future entries
    are parked in other buckets.
    """

    __slots__ = ("_buckets", "_cycles")

    kind = "bucket"

    def __init__(self) -> None:
        self._buckets: dict = {}
        self._cycles: List[int] = []

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __bool__(self) -> bool:
        return bool(self._cycles)

    def push(self, when: float, seq: int, task: Any, value: Any) -> None:
        cycle = int(when)
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = bucket = []
            heappush(self._cycles, cycle)
        heappush(bucket, (when, seq, task, value))

    def pop(self) -> Entry:
        cycles = self._cycles
        bucket = self._buckets[cycles[0]]
        entry = heappop(bucket)
        if not bucket:
            del self._buckets[heappop(cycles)]
        return entry

    def min_time(self) -> Optional[float]:
        if not self._cycles:
            return None
        return self._buckets[self._cycles[0]][0][0]


#: Registered calendar implementations, by ``Engine(calendar=...)`` name.
CALENDARS = {
    HeapCalendar.kind: HeapCalendar,
    BucketCalendar.kind: BucketCalendar,
}

DEFAULT_CALENDAR = BucketCalendar.kind


def make_calendar(kind: str = DEFAULT_CALENDAR):
    """Build a calendar by name (``"bucket"`` default, ``"heap"`` legacy)."""
    try:
        return CALENDARS[kind]()
    except KeyError:
        raise ValueError(
            f"unknown calendar kind {kind!r}; expected one of "
            f"{sorted(CALENDARS)}") from None
