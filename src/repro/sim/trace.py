"""Memory-access traces bridging functional data structures and the simulator.

The functional substrates (hash tables, classifiers, NFs) execute for real —
they insert, displace, and look up actual keys.  Alongside the functional
result they emit a :class:`MemTrace`: the ordered list of memory operations
the equivalent C code would perform, with *dependency groups* marking which
accesses are serialised behind each other (pointer chases) and which may
overlap (independent bucket reads issued back to back).

The simulator replays a trace through a :class:`~repro.sim.hierarchy.
MemoryHierarchy` from either a core or a CHA to obtain cycle costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, List


class MemOpKind(Enum):
    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class MemOp:
    """One memory operation performed by functional code.

    ``dep`` is a dependency-group index: operation *i* with ``dep=d`` cannot
    start before all operations with group ``< d`` have completed; operations
    sharing a group are independent and may overlap up to the core's MLP.
    """

    addr: int
    size: int = 8
    kind: MemOpKind = MemOpKind.LOAD
    dep: int = 0

    @property
    def is_store(self) -> bool:
        return self.kind is MemOpKind.STORE


@dataclass
class InstructionMix:
    """Instruction counts for the non-traced (compute) part of an operation.

    Mirrors the paper's Table 1 categories.  ``loads``/``stores`` here count
    *instructions*, which the trace's :class:`MemOp` entries realise as actual
    addresses; ``arithmetic`` and ``others`` are pure compute.
    """

    loads: int = 0
    stores: int = 0
    arithmetic: int = 0
    others: int = 0

    @property
    def total(self) -> int:
        return self.loads + self.stores + self.arithmetic + self.others

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            arithmetic=self.arithmetic + other.arithmetic,
            others=self.others + other.others,
        )

    def fractions(self) -> dict:
        """Category shares of the total instruction count."""
        total = self.total or 1
        return {
            "memory": (self.loads + self.stores) / total,
            "load": self.loads / total,
            "store": self.stores / total,
            "arithmetic": self.arithmetic / total,
            "others": self.others / total,
        }


class MemTrace:
    """An ordered collection of :class:`MemOp` plus an instruction mix."""

    __slots__ = ("ops", "mix")

    def __init__(self, ops: Iterable[MemOp] = (), mix: InstructionMix = None) -> None:
        self.ops: List[MemOp] = list(ops)
        self.mix = mix if mix is not None else InstructionMix()

    def __iter__(self) -> Iterator[MemOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def load(self, addr: int, size: int = 8, dep: int = 0) -> None:
        self.ops.append(MemOp(addr, size, MemOpKind.LOAD, dep))

    def store(self, addr: int, size: int = 8, dep: int = 0) -> None:
        self.ops.append(MemOp(addr, size, MemOpKind.STORE, dep))

    def extend(self, other: "MemTrace") -> None:
        """Append ``other``'s ops, shifting its dep groups after ours."""
        shift = self.max_dep + 1 if self.ops else 0
        for op in other.ops:
            self.ops.append(MemOp(op.addr, op.size, op.kind, op.dep + shift))
        self.mix = self.mix + other.mix

    @property
    def max_dep(self) -> int:
        return max((op.dep for op in self.ops), default=0)

    def dependency_chains(self) -> List[List[MemOp]]:
        """Group ops by dependency group, ordered."""
        groups: dict = {}
        for op in self.ops:
            groups.setdefault(op.dep, []).append(op)
        return [groups[key] for key in sorted(groups)]

    def touched_lines(self, line_bytes: int = 64) -> set:
        lines = set()
        for op in self.ops:
            first = op.addr // line_bytes
            last = (op.addr + max(op.size, 1) - 1) // line_bytes
            lines.update(range(first, last + 1))
        return lines


class Tracer:
    """Collects traces during functional execution.

    Data structures accept an optional tracer; when absent they run purely
    functionally with zero overhead (``NULL_TRACER`` pattern).
    """

    __slots__ = ("trace", "_dep", "enabled")

    def __init__(self) -> None:
        self.trace = MemTrace()
        self._dep = 0
        self.enabled = True

    def begin(self) -> None:
        """Start a fresh trace for the next operation."""
        self.trace = MemTrace()
        self._dep = 0

    def barrier(self) -> None:
        """Subsequent accesses depend on all previous ones."""
        self._dep += 1

    def load(self, addr: int, size: int = 8) -> None:
        self.trace.load(addr, size, self._dep)

    def store(self, addr: int, size: int = 8) -> None:
        self.trace.store(addr, size, self._dep)

    def count(self, loads: int = 0, stores: int = 0, arithmetic: int = 0,
              others: int = 0) -> None:
        mix = self.trace.mix
        mix.loads += loads
        mix.stores += stores
        mix.arithmetic += arithmetic
        mix.others += others

    def take(self) -> MemTrace:
        """Return the current trace and reset."""
        trace = self.trace
        self.begin()
        return trace


class NullTracer(Tracer):
    """A tracer that records nothing (fast path for pure functional use)."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def load(self, addr: int, size: int = 8) -> None:  # noqa: D102
        pass

    def store(self, addr: int, size: int = 8) -> None:  # noqa: D102
        pass

    def count(self, loads: int = 0, stores: int = 0, arithmetic: int = 0,
              others: int = 0) -> None:  # noqa: D102
        pass

    def barrier(self) -> None:  # noqa: D102
        pass


NULL_TRACER = NullTracer()
