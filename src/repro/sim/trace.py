"""Memory-access traces bridging functional data structures and the simulator.

The functional substrates (hash tables, classifiers, NFs) execute for real —
they insert, displace, and look up actual keys.  Alongside the functional
result they emit a :class:`MemTrace`: the ordered list of memory operations
the equivalent C code would perform, with *dependency groups* marking which
accesses are serialised behind each other (pointer chases) and which may
overlap (independent bucket reads issued back to back).

The simulator replays a trace through a :class:`~repro.sim.hierarchy.
MemoryHierarchy` from either a core or a CHA to obtain cycle costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, List, NamedTuple, Optional, Tuple


class MemOpKind(Enum):
    LOAD = "load"
    STORE = "store"


#: Enum members bound at module level: the recording hot path avoids the
#: per-call descriptor lookup on ``MemOpKind``.
_LOAD = MemOpKind.LOAD
_STORE = MemOpKind.STORE


class MemOp(NamedTuple):
    """One memory operation performed by functional code.

    ``dep`` is a dependency-group index: operation *i* with ``dep=d`` cannot
    start before all operations with group ``< d`` have completed; operations
    sharing a group are independent and may overlap up to the core's MLP.

    A named tuple rather than a (frozen) dataclass: traces allocate one of
    these per memory access on the replay hot path, and tuple construction
    is several times cheaper while keeping the value-semantics contract.
    """

    addr: int
    size: int = 8
    kind: MemOpKind = MemOpKind.LOAD
    dep: int = 0

    @property
    def is_store(self) -> bool:
        return self.kind is MemOpKind.STORE


@dataclass
class InstructionMix:
    """Instruction counts for the non-traced (compute) part of an operation.

    Mirrors the paper's Table 1 categories.  ``loads``/``stores`` here count
    *instructions*, which the trace's :class:`MemOp` entries realise as actual
    addresses; ``arithmetic`` and ``others`` are pure compute.
    """

    loads: int = 0
    stores: int = 0
    arithmetic: int = 0
    others: int = 0

    @property
    def total(self) -> int:
        return self.loads + self.stores + self.arithmetic + self.others

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            arithmetic=self.arithmetic + other.arithmetic,
            others=self.others + other.others,
        )

    def fractions(self) -> dict:
        """Category shares of the total instruction count."""
        total = self.total or 1
        return {
            "memory": (self.loads + self.stores) / total,
            "load": self.loads / total,
            "store": self.stores / total,
            "arithmetic": self.arithmetic / total,
            "others": self.others / total,
        }


class MemTrace:
    """An ordered collection of :class:`MemOp` plus an instruction mix."""

    __slots__ = ("ops", "mix")

    def __init__(self, ops: Iterable[MemOp] = (), mix: InstructionMix = None) -> None:
        self.ops: List[MemOp] = list(ops)
        self.mix = mix if mix is not None else InstructionMix()

    def __iter__(self) -> Iterator[MemOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def load(self, addr: int, size: int = 8, dep: int = 0) -> None:
        self.ops.append(MemOp(addr, size, MemOpKind.LOAD, dep))

    def store(self, addr: int, size: int = 8, dep: int = 0) -> None:
        self.ops.append(MemOp(addr, size, MemOpKind.STORE, dep))

    def extend(self, other: "MemTrace") -> None:
        """Append ``other``'s ops, shifting its dep groups after ours."""
        shift = self.max_dep + 1 if self.ops else 0
        for op in other.ops:
            self.ops.append(MemOp(op.addr, op.size, op.kind, op.dep + shift))
        self.mix = self.mix + other.mix

    @property
    def max_dep(self) -> int:
        return max((op.dep for op in self.ops), default=0)

    def dependency_chains(self) -> List[List[MemOp]]:
        """Group ops by dependency group, ordered."""
        ops = self.ops
        if not ops:
            return []
        # Recorded traces always have non-decreasing deps (a tracer's dep
        # counter only moves forward), so grouping is a single split pass.
        groups: List[List[MemOp]] = []
        current_dep = ops[0].dep
        current = [ops[0]]
        groups.append(current)
        push = current.append
        for op in ops[1:]:
            dep = op.dep
            if dep == current_dep:
                push(op)
            elif dep > current_dep:
                current = [op]
                push = current.append
                groups.append(current)
                current_dep = dep
            else:
                break
        else:
            return groups
        # Hand-built traces may interleave groups: fall back to the
        # generic group-by-value ordering.
        by_dep: dict = {}
        for op in ops:
            by_dep.setdefault(op.dep, []).append(op)
        return [by_dep[key] for key in sorted(by_dep)]

    def touched_lines(self, line_bytes: int = 64) -> set:
        lines = set()
        for op in self.ops:
            first = op.addr // line_bytes
            last = (op.addr + max(op.size, 1) - 1) // line_bytes
            lines.update(range(first, last + 1))
        return lines


class Tracer:
    """Collects traces during functional execution.

    Data structures accept an optional tracer; when absent they run purely
    functionally with zero overhead (``NULL_TRACER`` pattern).
    """

    __slots__ = ("trace", "_dep", "enabled", "_ops")

    def __init__(self) -> None:
        self.trace = MemTrace()
        self._ops = self.trace.ops
        self._dep = 0
        self.enabled = True

    def begin(self) -> None:
        """Start a fresh trace for the next operation."""
        trace = MemTrace()
        self.trace = trace
        # ``_ops`` aliases the live trace's op list so the per-access
        # recording path skips the trace indirection; ``trace`` is only
        # ever replaced here and in ``__init__``, keeping them in sync.
        self._ops = trace.ops
        self._dep = 0

    def barrier(self) -> None:
        """Subsequent accesses depend on all previous ones."""
        self._dep += 1

    def load(self, addr: int, size: int = 8) -> None:
        # Appends inline (not via MemTrace.load): one call level less on
        # the per-access recording path.
        self._ops.append(MemOp(addr, size, _LOAD, self._dep))

    def store(self, addr: int, size: int = 8) -> None:
        self._ops.append(MemOp(addr, size, _STORE, self._dep))

    def count(self, loads: int = 0, stores: int = 0, arithmetic: int = 0,
              others: int = 0) -> None:
        mix = self.trace.mix
        mix.loads += loads
        mix.stores += stores
        mix.arithmetic += arithmetic
        mix.others += others

    def emit_trace(self, ops: Tuple["MemOp", ...], dep_advance: int,
                   mix: "InstructionMix") -> None:
        """Replay a pre-recorded op sequence into the current trace.

        ``ops`` carry dependency groups *relative to the sequence start*;
        they are rebased onto the current group and the recorder advances
        by ``dep_advance`` (the number of barriers the serial emission
        would have issued).  Recording through this hook is equivalent,
        op for op, to the load/store/barrier/count calls it replaces —
        data structures use it to re-emit memoised probe traces.
        """
        base = self._dep
        if base:
            self._ops.extend(
                MemOp(op[0], op[1], op[2], op[3] + base) for op in ops)
        else:
            self._ops.extend(ops)
        self._dep = base + dep_advance
        trace_mix = self.trace.mix
        trace_mix.loads += mix.loads
        trace_mix.stores += mix.stores
        trace_mix.arithmetic += mix.arithmetic
        trace_mix.others += mix.others

    def take(self) -> MemTrace:
        """Return the current trace and reset."""
        trace = self.trace
        self.begin()
        return trace

    # -- per-core routing hooks ------------------------------------------------
    # A plain tracer is core-agnostic: activation is a no-op so `capture`
    # works uniformly whether a structure carries a Tracer or a
    # :class:`CoreTracerRouter`.
    def activate(self, core_id: int):
        """Make ``core_id`` the recording target; returns a restore token."""
        return None

    def restore(self, token) -> None:
        """Undo a previous :meth:`activate`."""

    def tracer_for(self, core_id: int) -> "Tracer":
        """The tracer that records ``core_id``'s operations (self here)."""
        return self


class NullTracer(Tracer):
    """A tracer that records nothing (fast path for pure functional use).

    Truly zero-overhead: ``begin``/``take`` reuse one immutable empty
    :class:`MemTrace` instead of allocating a fresh one per operation, and
    every recording hook is a no-op.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def begin(self) -> None:  # noqa: D102 — no allocation on the fast path
        pass

    def take(self) -> MemTrace:
        """The shared empty trace (callers must treat it as read-only)."""
        return self.trace

    def load(self, addr: int, size: int = 8) -> None:  # noqa: D102
        pass

    def store(self, addr: int, size: int = 8) -> None:  # noqa: D102
        pass

    def count(self, loads: int = 0, stores: int = 0, arithmetic: int = 0,
              others: int = 0) -> None:  # noqa: D102
        pass

    def barrier(self) -> None:  # noqa: D102
        pass

    def emit_trace(self, ops, dep_advance, mix) -> None:  # noqa: D102
        pass


NULL_TRACER = NullTracer()


class CoreTracerRouter(Tracer):
    """A tracer front-end that routes recording to per-core tracers.

    Shared data structures (tables, classifiers) are built once against a
    single tracer object, but with multiple cores interleaving on one DES
    engine each core needs its *own* capture state.  The router keeps one
    real :class:`Tracer` per core and delegates every recording call to the
    currently *active* one; :func:`capture` (or :meth:`activate`/
    :meth:`restore`) brackets each functional call with the issuing core.

    When no core is explicitly active, core 0's tracer records — which makes
    single-core code that talks to ``table.tracer`` directly keep working
    unchanged.
    """

    __slots__ = ("_tracers", "_active")

    def __init__(self) -> None:
        super().__init__()
        self._tracers: Dict[int, Tracer] = {}
        self._active: Tracer = self.tracer_for(0)

    def tracer_for(self, core_id: int) -> Tracer:
        """The (lazily created) tracer owned by ``core_id``."""
        tracer = self._tracers.get(core_id)
        if tracer is None:
            tracer = self._tracers[core_id] = Tracer()
        return tracer

    def activate(self, core_id: int) -> Tracer:
        """Route subsequent recording to ``core_id``; returns the previous
        target so nested activations restore correctly."""
        previous = self._active
        self._active = self.tracer_for(core_id)
        return previous

    def restore(self, token: Optional[Tracer]) -> None:
        if token is not None:
            self._active = token

    # -- delegated recording interface ----------------------------------------
    def begin(self) -> None:
        self._active.begin()

    def barrier(self) -> None:
        self._active.barrier()

    def load(self, addr: int, size: int = 8) -> None:
        self._active.load(addr, size)

    def store(self, addr: int, size: int = 8) -> None:
        self._active.store(addr, size)

    def count(self, loads: int = 0, stores: int = 0, arithmetic: int = 0,
              others: int = 0) -> None:
        self._active.count(loads, stores, arithmetic, others)

    def emit_trace(self, ops, dep_advance, mix) -> None:
        self._active.emit_trace(ops, dep_advance, mix)

    def take(self) -> MemTrace:
        return self._active.take()


def capture(tracer: Tracer, core_id: int, func, *args,
            **kwargs) -> Tuple[object, MemTrace]:
    """Run ``func`` and capture its memory trace on behalf of ``core_id``.

    The one sanctioned begin/run/take bracket: activates the core's tracer
    (a no-op for plain tracers), executes the functional call, and returns
    ``(value, trace)``.  Because DES process steps are atomic, no other
    core's recording can interleave inside the bracket.
    """
    token = tracer.activate(core_id)
    try:
        tracer.begin()
        value = func(*args, **kwargs)
        return value, tracer.take()
    finally:
        tracer.restore(token)
