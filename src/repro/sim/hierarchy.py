"""The simulated memory hierarchy: per-core L1D/L2, NUCA LLC slices, DRAM.

Two access paths matter for the paper:

* :meth:`MemoryHierarchy.core_access` — the conventional path a load/store
  takes from a core: L1D → L2 → home LLC slice (ring transfer, NUCA) → DRAM,
  filling private caches on the way back (and thereby *polluting* them —
  Figure 12's effect).
* :meth:`MemoryHierarchy.cha_access` — HALO's near-cache path: the CHA
  reads its (or a peer's) LLC slice directly, never touching private caches.
  This is the 4.1×-faster-data-access property from Figure 10.

The hierarchy is inclusive: an LLC eviction back-invalidates private copies.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import reduce
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from ..obs import Observability
from .cache import Cache, CacheStats
from .coherence import SnoopFilter
from .interconnect import build_interconnect
from .memory import AddressAllocator, Dram
from .tlb import Tlb
from .params import MachineParams

#: Levels an access can be satisfied from (metric label set).
ACCESS_LEVELS = ("L1", "L2", "LLC", "PRIV", "DRAM")

#: Extra cycles per retry when a store hits a HALO-locked line (§4.4).
LOCK_RETRY_CYCLES = 20
#: Retries before we consider the lock pathological (tests assert we never hit it).
MAX_LOCK_RETRIES = 64


class AccessResult(NamedTuple):
    """Outcome of one memory access.

    A named tuple: one is allocated per simulated memory access, so cheap
    construction matters (see the replay fast path in :mod:`repro.sim.core`).
    """

    latency: int
    level: str            # "L1" | "L2" | "LLC" | "PRIV" | "DRAM"
    slice_id: int = -1
    lock_retries: int = 0

    @property
    def hit_llc_or_better(self) -> bool:
        return self.level in ("L1", "L2", "LLC", "PRIV")


class MemoryHierarchy:
    """The full cache/memory system for one machine (1..N sockets).

    Private caches, LLC slices, and the snoop filter are indexed by
    *global* core/slice ids; the :class:`~repro.sim.params.Topology`
    decides which socket each id lives on.  Cross-socket transfers pay
    the inter-socket link penalty (see :meth:`_llc_latency_from` and the
    interconnect); with the default single-socket topology no penalty
    term is ever non-zero, so cycle counts are bit-identical to the
    pre-topology model.
    """

    def __init__(self, machine: MachineParams = None,
                 obs: Optional[Observability] = None) -> None:
        self.machine = machine or MachineParams()
        self.obs = obs if obs is not None else Observability()
        lat = self.machine.latency
        self.latency = lat
        self.topology = self.machine.topo
        self.l1 = [Cache(f"L1D.{i}", self.machine.l1d)
                   for i in range(self.machine.cores)]
        self.l2 = [Cache(f"L2.{i}", self.machine.l2)
                   for i in range(self.machine.cores)]
        self.llc = [Cache(f"LLC.{s}", self.machine.llc_slice)
                    for s in range(self.machine.llc_slices)]
        self.interconnect = build_interconnect(
            self.machine.interconnect, self.machine.llc_slices, lat,
            self.topology)
        self.snoop_filter = SnoopFilter(self.machine.cores,
                                        self.machine.llc_slices)
        self.dram = Dram(lat.dram)
        self.tlbs = ([Tlb(self.machine.tlb) for _ in range(self.machine.cores)]
                     if self.machine.tlb is not None else None)
        self.allocator = AddressAllocator(self.machine.dram_bytes)
        self.line_bytes = self.machine.l1d.line_bytes
        # Socket geometry (== machine totals for one socket).
        self._sockets = self.topology.sockets
        self._cores_per_socket = self.topology.socket.cores
        self._slices_per_socket = self.topology.socket.llc_slices
        # Round-trip cycles added per inter-socket crossing (request out,
        # data back); zero with one socket so no access path changes.
        self._link_round_trip = (2 * self.topology.link_latency
                                 if self._sockets > 1 else 0)
        # Average local-fabric distance used to centre the NUCA latency
        # spread so the mean core->local-slice latency equals
        # ``latency.llc_hit``.  Per socket: the spread is a property of
        # one socket's ring, not of the whole machine.
        self._avg_hops = self._slices_per_socket // 4
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Publish the hierarchy through the machine's metrics registry.

        Latency histograms and per-level counters are *push* metrics updated
        on every access (null no-ops when observability is off); the cache /
        DRAM / TLB / interconnect stats blocks are *pull* sources read only
        at snapshot time.
        """
        registry = self.obs.metrics
        self._m_core_cycles = registry.histogram("mem.core_access.cycles")
        self._m_cha_cycles = registry.histogram("mem.cha_access.cycles")
        self._m_core_level = {
            level: registry.counter(f"mem.core_access.level.{level}")
            for level in ACCESS_LEVELS}
        self._m_cha_level = {
            level: registry.counter(f"mem.cha_access.level.{level}")
            for level in ACCESS_LEVELS}
        self._m_lock_retries = registry.counter("mem.store_lock_retries")
        registry.register_source(
            "mem.l1d", lambda: self._level_stats(self.l1).as_dict())
        registry.register_source(
            "mem.l2", lambda: self._level_stats(self.l2).as_dict())
        registry.register_source(
            "mem.llc", lambda: self._level_stats(self.llc).as_dict())
        registry.register_source("mem.dram",
                                 lambda: self.dram.stats.as_dict())
        registry.register_source("mem.interconnect",
                                 lambda: self.interconnect.stats.as_dict())
        if self.tlbs is not None:
            registry.register_source(
                "mem.tlb",
                lambda: reduce(
                    lambda acc, tlb: {
                        "hits": acc["hits"] + tlb.stats.hits,
                        "misses": acc["misses"] + tlb.stats.misses},
                    self.tlbs, {"hits": 0, "misses": 0}))

    @staticmethod
    def _level_stats(caches: List[Cache]) -> CacheStats:
        """Roll one cache level's per-instance stats into an aggregate."""
        return reduce(CacheStats.merged, (c.stats for c in caches),
                      CacheStats())

    # -- helpers ---------------------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    def slice_of(self, addr: int) -> int:
        return self.interconnect.slice_of_line(self.line_of(addr))

    def socket_of_core(self, core_id: int) -> int:
        """Which socket a core lives on (always 0 on one socket)."""
        return self.topology.socket_of_core(core_id)

    def socket_of_slice(self, slice_id: int) -> int:
        """Which socket an LLC slice lives on (always 0 on one socket)."""
        return self.topology.socket_of_slice(slice_id)

    def core_stop(self, core_id: int) -> int:
        """Fabric stop of a core (core i shares a tile with slice i).

        Multi-socket: a core's stop is on *its own* socket's fabric —
        local core j sits at that socket's local slice ``j mod
        slices_per_socket``.  With one socket this reduces exactly to
        ``core_id % llc_slices``.
        """
        if self._sockets == 1:
            return core_id % self.machine.llc_slices
        socket = (core_id % self.machine.cores) // self._cores_per_socket
        local = (core_id % self._cores_per_socket) % self._slices_per_socket
        return socket * self._slices_per_socket + local

    def _llc_latency_from(self, stop: int, slice_id: int) -> int:
        """NUCA: core->slice latency centred on ``llc_hit``.

        A remote-socket home additionally pays the link round trip
        (request over, data back) — the term is zero on one socket.
        """
        interconnect = self.interconnect
        hops = interconnect.hops(stop, slice_id)
        latency = (self.latency.llc_hit
                   + 2 * self.latency.hop * (hops - self._avg_hops))
        if self._link_round_trip:
            crossings = interconnect.link_crossings(stop, slice_id)
            if crossings:
                latency += self._link_round_trip * crossings
                interconnect.stats.link_crossings += crossings
        return max(latency, self.latency.l2_hit + 2)

    # -- conventional core path --------------------------------------------------
    def core_access(self, core_id: int, addr: int,
                    write: bool = False) -> AccessResult:
        """One load/store issued by ``core_id`` against byte address ``addr``."""
        result = self._core_access(core_id, addr, write)
        self._m_core_cycles.observe(result.latency)
        self._m_core_level[result.level].inc()
        if result.lock_retries:
            self._m_lock_retries.inc(result.lock_retries)
        return result

    def observe_core_accesses(self, latency_counts: Dict[int, int],
                              level_counts: Dict[str, int],
                              lock_retries: int = 0) -> None:
        """Flush a batch of deferred :meth:`core_access` observations.

        The batched trace-replay fast path calls :meth:`_core_access`
        directly (skipping the per-access metric pushes) and hands the
        aggregated latencies/levels here, so the registry ends up in the
        same state as if every access had gone through the instrumented
        wrapper.
        """
        observe_many = self._m_core_cycles.observe_many
        for latency in sorted(latency_counts):
            observe_many(latency, latency_counts[latency])
        for level, count in level_counts.items():
            self._m_core_level[level].inc(count)
        if lock_retries:
            self._m_lock_retries.inc(lock_retries)

    def core_accessor(self, core_id: int
                      ) -> Callable[[int, bool], Tuple[int, str, int]]:
        """A pre-bound access closure for the batched pricing sweep.

        State transitions are exactly :meth:`_core_access` — the L1 read
        probe is inlined against the cache internals (the overwhelmingly
        common case in warm lookup streams) and everything else falls
        through to the shared slow path — but the closure returns a plain
        ``(latency, level, lock_retries)`` tuple and skips the per-access
        metric pushes; callers flush their deferred observations through
        :meth:`observe_core_accesses`.
        """
        full = self._core_access
        if self.tlbs is not None:
            # TLB translation charges per *byte address*, which the
            # inlined line-granular probe below cannot reproduce — take
            # the full path.
            def access(addr: int, write: bool) -> Tuple[int, str, int]:
                result = full(core_id, addr, write)
                return result[0], result[1], result[3]
            return access
        l1 = self.l1[core_id]
        sets = l1._sets
        sets_get = sets.get
        mask = l1.num_sets - 1
        stats = l1.stats
        line_bytes = self.line_bytes
        l1_hit = self.latency.l1_hit
        fill = self._core_access_fill
        ordered_dict = OrderedDict
        # One shared tuple for every L1 hit — the hot return value is a
        # constant, so allocating it per access would be pure churn.
        hit_result = (l1_hit, "L1", 0)

        def access(addr: int, write: bool) -> Tuple[int, str, int]:
            if write:
                # Stores need ownership/lock-retry modelling: full path.
                result = full(core_id, addr, write)
                return result[0], result[1], result[3]
            line = addr // line_bytes
            index = line & mask
            cache_set = sets_get(index)
            if cache_set is None:
                # Same state effect as Cache._set_for on a cold set.
                sets[index] = ordered_dict()
            elif cache_set.get(line) is not None:
                cache_set.move_to_end(line)
                stats.hits += 1
                return hit_result
            stats.misses += 1
            result = fill(core_id, line, False, 0, 0)
            return result[0], result[1], result[3]
        return access

    def _core_access(self, core_id: int, addr: int,
                     write: bool = False) -> AccessResult:
        line = self.line_of(addr)
        extra = 0
        retries = 0
        if self.tlbs is not None:
            extra += self.tlbs[core_id].access(addr)
        if write:
            ownership, retries = self._gain_ownership(line, core_id)
            extra += ownership
        if self.l1[core_id].lookup(line, write=write):
            return AccessResult(self.latency.l1_hit + extra, "L1",
                                self.interconnect.slice_of_line(line),
                                retries)
        return self._core_access_fill(core_id, line, write, extra, retries)

    def _core_access_fill(self, core_id: int, line: int, write: bool,
                          extra: int, retries: int) -> AccessResult:
        """The L1-missed continuation of :meth:`_core_access`: L2 → home
        LLC slice → peer private caches → DRAM, filling private caches on
        the way back.  Split out so :meth:`core_accessor` can inline the
        L1 probe and share everything below it unchanged."""
        l1 = self.l1[core_id]
        l2 = self.l2[core_id]
        slice_of_line = self.interconnect.slice_of_line
        if l2.lookup(line, write=write):
            self._fill_private(l1, line, core_id, dirty=write)
            return AccessResult(self.latency.l2_hit + extra, "L2",
                                slice_of_line(line), retries)

        slice_id = slice_of_line(line)
        llc = self.llc[slice_id]
        stop = self.core_stop(core_id)
        if llc.lookup(line, write=write):
            latency = self._llc_latency_from(stop, slice_id) + extra
            self._fill_private(l2, line, core_id, dirty=False)
            self._fill_private(l1, line, core_id, dirty=write)
            self.snoop_filter.record_fill(line, core_id)
            return AccessResult(latency, "LLC", slice_id, retries)

        # Check other cores' private caches (dirty sharing): costlier than LLC.
        holder = self._private_holder(line, exclude=core_id)
        if holder is not None:
            latency = (self._llc_latency_from(stop, slice_id)
                       + self.latency.snoop_invalidate + extra)
            self._install_llc(slice_id, line)
            self._fill_private(l2, line, core_id, dirty=False)
            self._fill_private(l1, line, core_id, dirty=write)
            self.snoop_filter.record_fill(line, core_id)
            return AccessResult(latency, "PRIV", slice_id, retries)

        # DRAM.  The memory controller sits behind the line's *home* slice,
        # so a remote-socket home pays the link round trip on top of the
        # DRAM latency (zero on one socket).
        latency = self.dram.access_latency(write=write) + extra
        if self._link_round_trip:
            crossings = self.interconnect.link_crossings(stop, slice_id)
            if crossings:
                latency += self._link_round_trip * crossings
                self.interconnect.stats.link_crossings += crossings
        self._install_llc(slice_id, line)
        self._fill_private(l2, line, core_id, dirty=False)
        self._fill_private(l1, line, core_id, dirty=write)
        self.snoop_filter.record_fill(line, core_id)
        return AccessResult(latency, "DRAM", slice_id, retries)

    # -- HALO near-cache path ------------------------------------------------------
    def cha_access(self, accelerator_slice: int, addr: int,
                   write: bool = False) -> AccessResult:
        """A CHA-side access from the accelerator at ``accelerator_slice``.

        Never fills private caches (no pollution); DRAM fills go into the
        line's home LLC slice only.
        """
        result = self._cha_access(accelerator_slice, addr, write)
        self._m_cha_cycles.observe(result.latency)
        self._m_cha_level[result.level].inc()
        return result

    def _cha_access(self, accelerator_slice: int, addr: int,
                    write: bool = False) -> AccessResult:
        line = self.line_of(addr)
        home = self.slice_of(addr)
        transfer = self.interconnect.transfer_latency(accelerator_slice, home)
        llc = self.llc[home]
        if llc.lookup(line, write=write):
            return AccessResult(self.latency.cha_llc_hit + transfer,
                                "LLC", home)
        holder = self._private_holder(line)
        if holder is not None:
            # Pull the line from a private cache back into LLC.
            latency = (self.latency.cha_llc_hit + transfer
                       + self.latency.snoop_invalidate // 2)
            self._install_llc(home, line)
            return AccessResult(latency, "PRIV", home)
        latency = min(self.dram.access_latency(write=write),
                      self.latency.cha_dram) + transfer
        self._install_llc(home, line)
        return AccessResult(latency, "DRAM", home)

    # -- HALO lock bits (delegate to the home slice) -------------------------------
    def lock_line(self, addr: int) -> bool:
        """Set the HALO lock bit if the line is LLC-resident.

        Absent lines cannot be locked — the accelerator locks them after
        its (charged) data fetch brings them in.
        """
        line = self.line_of(addr)
        return self.llc[self.slice_of(addr)].lock(line)

    def unlock_line(self, addr: int) -> bool:
        line = self.line_of(addr)
        return self.llc[self.slice_of(addr)].unlock(line)

    def line_locked(self, addr: int) -> bool:
        line = self.line_of(addr)
        return self.llc[self.slice_of(addr)].is_locked(line)

    # -- internals -------------------------------------------------------------
    def _gain_ownership(self, line: int, core_id: int) -> tuple:
        """Cost of acquiring exclusive ownership for a store."""
        extra = 0
        retries = 0
        home = self.interconnect.slice_of_line(line)
        while self.llc[home].is_locked(line):
            retries += 1
            extra += LOCK_RETRY_CYCLES
            self.snoop_filter.invalidate_for_store(line, core_id, locked=True)
            if retries >= MAX_LOCK_RETRIES:
                break
            # The lock holder (an accelerator query) completes quickly; in
            # the synchronous replay model the lock is released by the other
            # agent between retries, so re-check once more then give up to
            # the caller, which models forward progress.
            break
        remote_sharer = False
        if self._sockets > 1:
            # Snoops travel in parallel (one round trip), but if any
            # sharer sits on another socket the round trip spans the
            # link.  Checked before the invalidation consumes the set.
            writer_socket = self.socket_of_core(core_id)
            remote_sharer = any(
                self.socket_of_core(sharer) != writer_socket
                for sharer in self.snoop_filter.other_sharers(line, core_id))
        outcome = self.snoop_filter.invalidate_for_store(line, core_id)
        if outcome["sharers"]:
            extra += self.latency.snoop_invalidate
            if remote_sharer:
                extra += self._link_round_trip
                self.interconnect.stats.link_crossings += 1
        return extra, retries

    def _private_holder(self, line: int,
                        exclude: Optional[int] = None) -> Optional[int]:
        for core in self.snoop_filter.sharers_of(line):
            if core == exclude:
                continue
            if self.l1[core].contains(line) or self.l2[core].contains(line):
                return core
        return None

    def _fill_private(self, cache: Cache, line: int, core_id: int,
                      dirty: bool) -> None:
        victim = cache.fill(line, dirty=dirty)
        if victim is not None and cache.name.startswith("L2"):
            # L2 eviction: the victim may also leave L1 (non-inclusive L1/L2
            # on Skylake, but keeping presence consistent is enough here).
            self.l1[core_id].invalidate(victim)
            if (not self.l1[core_id].contains(victim)
                    and not self.l2[core_id].contains(victim)):
                self.snoop_filter.record_eviction(victim, core_id)

    def _install_llc(self, slice_id: int, line: int) -> None:
        victim = self.llc[slice_id].fill(line)
        if victim is not None:
            # Inclusive LLC: back-invalidate every private copy.
            for core in self.snoop_filter.sharers_of(victim):
                self.l1[core].invalidate(victim)
                self.l2[core].invalidate(victim)
                self.snoop_filter.record_eviction(victim, core)

    # -- warm-up & utility -----------------------------------------------------
    def warm_llc(self, base: int, size: int) -> int:
        """Pre-install a region's lines into the LLC; returns line count."""
        first = self.line_of(base)
        last = self.line_of(base + size - 1)
        for line in range(first, last + 1):
            self._install_llc(self.interconnect.slice_of_line(line), line)
        return last - first + 1

    def flush_private(self, core_id: int) -> None:
        self.l1[core_id].flush()
        self.l2[core_id].flush()

    def flush_all(self) -> None:
        """Empty every cache level (DRAM-resident scenarios, Figure 10)."""
        for cache in self.l1 + self.l2 + self.llc:
            cache.flush()

    def flush_region(self, base: int, size: int) -> None:
        """Evict one address range from every cache level.

        Models a working set displaced to DRAM (e.g. a hash table evicted
        by other tenants) without disturbing unrelated lines such as the
        caller's key operand.
        """
        first = self.line_of(base)
        last = self.line_of(base + size - 1)
        for line in range(first, last + 1):
            for core in range(self.machine.cores):
                self.l1[core].invalidate(line)
                self.l2[core].invalidate(line)
                self.snoop_filter.record_eviction(line, core)
            self.llc[self.interconnect.slice_of_line(line)].invalidate(line)

    def reset_stats(self) -> None:
        for cache in self.l1 + self.l2 + self.llc:
            cache.stats.reset()
        self.dram.stats.reads = self.dram.stats.writes = 0

    def llc_resident_fraction(self, base: int, size: int) -> float:
        """Fraction of a region's lines currently resident in the LLC."""
        first = self.line_of(base)
        last = self.line_of(base + size - 1)
        total = last - first + 1
        resident = sum(
            1 for line in range(first, last + 1)
            if self.llc[self.interconnect.slice_of_line(line)].contains(line))
        return resident / total
