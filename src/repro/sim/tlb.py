"""TLB model: why DPDK backs its tables with hugepages.

The paper's software baseline "use[s] contiguous memory allocation for the
hash table for performance reason" — in practice DPDK hugepage memory,
whose 2 MB pages let a few dozen TLB entries cover the whole table.  With
4 KB pages, a multi-megabyte table's random bucket accesses miss the
D-TLB constantly and each miss costs a page walk.

By default the simulator models the hugepage steady state (translation is
free — `MachineParams.tlb = None`); the TLB becomes visible only in the
ablation configs (`TlbParams.small_pages()` / `.hugepages()`), which is
faithful to how the paper's numbers were gathered.

HALO-side accesses skip the TLB: the lookup instructions carry addresses
the core already translated at issue, and the accelerator's own accesses
are physical (its boundary check, §4.7, replaces protection).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class TlbParams:
    """One D-TLB level's geometry and miss cost."""

    entries: int = 64
    page_bytes: int = 4096
    walk_cycles: int = 35     # page-table walk on a miss

    @classmethod
    def small_pages(cls) -> "TlbParams":
        """4 KB pages: 64 entries reach only 256 KB."""
        return cls(entries=64, page_bytes=4096, walk_cycles=35)

    @classmethod
    def hugepages(cls) -> "TlbParams":
        """2 MB pages: 32 entries reach 64 MB — DPDK's configuration."""
        return cls(entries=32, page_bytes=2 * 1024 * 1024, walk_cycles=35)

    @property
    def reach_bytes(self) -> int:
        return self.entries * self.page_bytes


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        return {"hits": self.hits, "misses": self.misses,
                "miss_rate": self.miss_rate}


class Tlb:
    """A fully-associative LRU D-TLB for one core."""

    def __init__(self, params: TlbParams) -> None:
        if params.entries < 1:
            raise ValueError("TLB needs at least one entry")
        if params.page_bytes & (params.page_bytes - 1):
            raise ValueError("page size must be a power of two")
        self.params = params
        self.stats = TlbStats()
        self._entries: OrderedDict = OrderedDict()

    def page_of(self, addr: int) -> int:
        return addr // self.params.page_bytes

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns the added latency (0 on a hit)."""
        page = self.page_of(addr)
        if page in self._entries:
            self._entries.move_to_end(page)
            self.stats.hits += 1
            return 0
        self.stats.misses += 1
        if len(self._entries) >= self.params.entries:
            self._entries.popitem(last=False)
        self._entries[page] = True
        return self.params.walk_cycles

    def flush(self) -> None:
        self._entries.clear()

    @property
    def resident_pages(self) -> int:
        return len(self._entries)
