"""Batched trace replay: the straight-line fast path through the cache model.

Public contract
===============

The conventional way to charge a stream of traced operations is one DES hop
per operation — price the trace on the :class:`~repro.sim.core.CoreModel`,
``yield engine.timeout(cycles)``, repeat.  Each hop costs a generator resume
plus a calendar round-trip, which dominates wall time for replay-heavy
workloads.  :class:`TraceReplay` keeps the per-operation contract — cycle
outcomes agree with the serial path to rel=1e-12 (the parity suite pins
this, and the batch kernels are bit-exact on integer-latency traces) — but
collapses the event traffic when nothing observable is lost.  Three
execution modes exist, chosen per stream by :meth:`TraceReplay.decide`:

``batch`` (:data:`REPLAY_BATCH`)
    Nothing else shares the engine: the whole sequence is priced in one
    pass (:meth:`~repro.sim.core.CoreModel.execute_batch` — vectorised
    when numpy is active, see :mod:`repro.sim.kernels`) and the summed
    cost is spent as a single timeout.

``windowed`` (:data:`REPLAY_WINDOWED`)
    Other processes are live, so intermediate ``engine.now`` states are
    observable — but only *at their events*.  The replay asks the engine
    for the next pending event time (:meth:`~repro.sim.engine.Engine.
    next_event_time`), prices traces serially up to that horizon
    (:meth:`~repro.sim.core.CoreModel.execute_window`), and spends each
    window as one timeout.  No foreign process can run strictly inside a
    window, and at the horizon the engine's FIFO tie-break picks the same
    winner it would under per-trace hops, so the interleaving — which
    process touches the shared hierarchy when — is identical to serial
    replay.  Concurrent workers therefore batch *between interaction
    points* instead of falling back to one event per lookup.

``serial`` (:data:`REPLAY_SERIAL`)
    The classic one-timeout-per-trace loop.  Mandatory whenever per-access
    observation matters:

    * fault hooks installed (:mod:`repro.faults` rewires latencies per
      access), or
    * a guard attached (:mod:`repro.guard` samples the event stream), or
    * concurrency with windowed mode switched off.

Self-disabling is silent for callers but never invisible: every fallback
increments ``replay.fallback.<reason>`` (``faults`` / ``guard`` /
``concurrency``) on the system's metrics registry when one is wired in,
and batched/windowed executions count ``replay.batches`` /
``replay.windows``.  Counters are created lazily on first use, so runs
that never batch leave the metric namespace untouched.

Caveat (windowed capture): stream executors capture every trace up front
(:meth:`repro.core.software.SoftwareLookupEngine.capture_lookups`) before
replaying.  A concurrent process that *mutates* the table mid-stream would
not be reflected in already-captured traces; the shipped multicore
workloads are lookup-only, and mutating streams should stay on the serial
path.

Environment toggles: ``REPRO_BATCHED_REPLAY`` opts streams into batching
(default off, see :func:`batched_replay_default`);
``REPRO_WINDOWED_REPLAY`` controls whether concurrency degrades to
windowed replay or all the way to serial (default on, see
:func:`windowed_replay_default`; only consulted when batching is on).
"""

from __future__ import annotations

import os
from typing import Generator, Iterable, List, Optional

from .core import CoreModel, ExecutionResult
from .engine import Engine
from .trace import MemTrace

#: Environment toggle consulted by stream executors that wire a
#: :class:`TraceReplay` in by default (see
#: :meth:`repro.exec.backend.SoftwareBackend.lookup_stream`).
BATCHED_REPLAY_ENV = "REPRO_BATCHED_REPLAY"

#: Environment toggle for the windowed concurrent mode (effective only
#: when batching is on; default enabled).
WINDOWED_REPLAY_ENV = "REPRO_WINDOWED_REPLAY"

#: Replay modes returned by :meth:`TraceReplay.decide`.
REPLAY_BATCH = "batch"
REPLAY_WINDOWED = "windowed"
REPLAY_SERIAL = "serial"
#: Batching was never requested (``batched=False``) — callers should use
#: their own per-operation idiom (stream executors keep per-key lookups).
REPLAY_OFF = "off"

#: Metric names recorded on the registry handed to :class:`TraceReplay`.
METRIC_BATCHES = "replay.batches"
METRIC_WINDOWS = "replay.windows"
METRIC_FALLBACK_FAULTS = "replay.fallback.faults"
METRIC_FALLBACK_GUARD = "replay.fallback.guard"
METRIC_FALLBACK_CONCURRENCY = "replay.fallback.concurrency"


def batched_replay_default() -> bool:
    """Whether batched replay is switched on for this process (opt-in)."""
    return os.environ.get(BATCHED_REPLAY_ENV, "0").lower() in (
        "1", "true", "yes", "on")


def windowed_replay_default() -> bool:
    """Whether concurrent batched streams use windowed replay (opt-out)."""
    return os.environ.get(WINDOWED_REPLAY_ENV, "1").lower() not in (
        "0", "false", "no", "off")


class TraceReplay:
    """Replays :class:`~repro.sim.trace.MemTrace` sequences as DES programs.

    ``batched=False`` (default) reproduces the classic one-timeout-per-trace
    idiom exactly.  ``batched=True`` opts into the fast paths described in
    the module docstring; ``windowed`` controls whether concurrency falls
    back to windowed replay (default, per :func:`windowed_replay_default`)
    or all the way to serial.  ``metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry` that receives the
    batch/window/fallback counters.
    """

    __slots__ = ("core", "engine", "batched", "windowed", "batches",
                 "windows", "fallbacks", "_metrics")

    def __init__(self, core: CoreModel, engine: Engine,
                 batched: bool = False,
                 windowed: Optional[bool] = None,
                 metrics=None) -> None:
        self.core = core
        self.engine = engine
        self.batched = batched
        self.windowed = (windowed_replay_default() if windowed is None
                         else windowed)
        #: Fast-path batches / windows executed, and batched calls that
        #: fell back to serial (the registry counters mirror these).
        self.batches = 0
        self.windows = 0
        self.fallbacks = 0
        self._metrics = metrics

    def _count(self, name: str) -> None:
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(name).inc()

    def eligible(self) -> bool:
        """May the *next* replay call collapse into a single event?

        Counter-free compatibility probe; stream executors should prefer
        :meth:`decide`, which also resolves the windowed mode and records
        fallback reasons.
        """
        if not self.batched:
            return False
        engine = self.engine
        return (not engine._fault_hooks
                and engine._guard is None
                and len(engine._live) <= 1)

    def decide(self) -> str:
        """Resolve the replay mode for the next stream, recording counters.

        Called once per stream: returns one of :data:`REPLAY_BATCH`,
        :data:`REPLAY_WINDOWED`, :data:`REPLAY_SERIAL`, or
        :data:`REPLAY_OFF`, and increments the matching
        ``replay.fallback.*`` counter whenever a batched request degrades
        to serial.  A windowed decision is not a fallback — it is the
        batching strategy for concurrent engines.
        """
        if not self.batched:
            return REPLAY_OFF
        engine = self.engine
        if engine._fault_hooks:
            self.fallbacks += 1
            self._count(METRIC_FALLBACK_FAULTS)
            return REPLAY_SERIAL
        if engine._guard is not None:
            self.fallbacks += 1
            self._count(METRIC_FALLBACK_GUARD)
            return REPLAY_SERIAL
        if len(engine._live) > 1:
            if self.windowed:
                return REPLAY_WINDOWED
            self.fallbacks += 1
            self._count(METRIC_FALLBACK_CONCURRENCY)
            return REPLAY_SERIAL
        return REPLAY_BATCH

    def replay(self, traces: Iterable[MemTrace],
               lock_cycles_each: float = 0.0,
               mode: Optional[str] = None) -> Generator:
        """DES program replaying ``traces``; returns ``List[ExecutionResult]``.

        Drive with ``engine.run_process`` (or ``yield from`` it inside a
        larger program).  ``mode`` pins the execution mode (a
        :meth:`decide` result); when omitted it is decided here, so direct
        callers keep the one-call contract.
        """
        traces = list(traces)
        if mode is None:
            mode = self.decide()
        if mode == REPLAY_BATCH:
            self.batches += 1
            self._count(METRIC_BATCHES)
            results = self.core.execute_batch(
                traces, lock_cycles_each=lock_cycles_each)
            total = 0.0
            for result in results:
                total += result.cycles
            if total:
                yield self.engine.timeout(total)
            return results
        if mode == REPLAY_WINDOWED:
            results = yield from self._replay_windowed(traces,
                                                       lock_cycles_each)
            return results
        results: List[ExecutionResult] = []
        for trace in traces:
            result = self.core.execute(trace, lock_cycles=lock_cycles_each)
            if result.cycles:
                yield self.engine.timeout(result.cycles)
            results.append(result)
        return results

    def _replay_windowed(self, traces: List[MemTrace],
                         lock_cycles_each: float) -> Generator:
        """Price between interaction points; one timeout per window.

        Each window prices serially up to the engine's next pending event
        (no other process can run before it); a window whose cumulative
        cost crosses the horizon ends there, exactly where serial replay
        would first yield to the foreign event.  When the calendar holds
        nothing else — every peer finished or is blocked waiting on us —
        the remainder collapses into one vectorised batch.
        """
        core = self.core
        engine = self.engine
        count = len(traces)
        index = 0
        results: List[ExecutionResult] = []
        while index < count:
            horizon = engine.next_event_time()
            if horizon is None:
                self.windows += 1
                self._count(METRIC_WINDOWS)
                rest = core.execute_batch(
                    traces[index:], lock_cycles_each=lock_cycles_each)
                total = 0.0
                for result in rest:
                    total += result.cycles
                results.extend(rest)
                if total:
                    yield engine.timeout(total)
                return results
            window, total, index = core.execute_window(
                traces, index, horizon - engine.now, lock_cycles_each)
            self.windows += 1
            self._count(METRIC_WINDOWS)
            results.extend(window)
            if total:
                yield engine.timeout(total)
        return results
