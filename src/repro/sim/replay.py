"""Batched trace replay: the straight-line fast path through the cache model.

The conventional way to charge a stream of traced operations is one DES hop
per operation — price the trace on the :class:`~repro.sim.core.CoreModel`,
``yield engine.timeout(cycles)``, repeat.  Each hop costs a generator resume
plus a calendar round-trip, which dominates wall time for the single-stream
replay workloads (fig09-style sweeps) where nothing else shares the engine.

:class:`TraceReplay` keeps the same contract but, when *batched* mode is on
**and** nothing needs per-event interleaving, prices the whole sequence in
one pass (:meth:`~repro.sim.core.CoreModel.execute_batch` — identical cycle
arithmetic, deferred metric pushes) and spends the summed cost as a single
timeout.  The eligibility check is dynamic, per call:

* no fault hooks installed on the engine (:mod:`repro.faults` rewires
  latencies per access, so every access must stay an observable event);
* no guard attached (:mod:`repro.guard` budgets/invariants sample the event
  stream — collapsing it would blind the watchdog);
* at most one live process on the engine (with concurrent processes —
  multicore runs, accelerator traffic — intermediate ``engine.now`` states
  are observable and the per-operation hops must stay).

When any of these holds the call silently falls back to the generator path,
so ``TraceReplay(batched=True)`` is always safe to use; ``fallbacks`` counts
how often that happened.  Cycle outcomes agree with the serial path to
rel=1e-12 (the parity suite pins this): the only drift source is float
summation order for ``engine.now``, a few ulps at worst.
"""

from __future__ import annotations

import os
from typing import Generator, Iterable, List

from .core import CoreModel, ExecutionResult
from .engine import Engine
from .trace import MemTrace

#: Environment toggle consulted by stream executors that wire a
#: :class:`TraceReplay` in by default (see
#: :meth:`repro.exec.backend.SoftwareBackend.lookup_stream`).
BATCHED_REPLAY_ENV = "REPRO_BATCHED_REPLAY"


def batched_replay_default() -> bool:
    """Whether batched replay is switched on for this process (opt-in)."""
    return os.environ.get(BATCHED_REPLAY_ENV, "0").lower() in (
        "1", "true", "yes", "on")


class TraceReplay:
    """Replays :class:`~repro.sim.trace.MemTrace` sequences as DES programs.

    ``batched=False`` (default) reproduces the classic one-timeout-per-trace
    idiom exactly.  ``batched=True`` opts into the fast path described in
    the module docstring, subject to the per-call :meth:`eligible` check.
    """

    __slots__ = ("core", "engine", "batched", "batches", "fallbacks")

    def __init__(self, core: CoreModel, engine: Engine,
                 batched: bool = False) -> None:
        self.core = core
        self.engine = engine
        self.batched = batched
        #: Fast-path batches executed / batched calls that fell back.
        self.batches = 0
        self.fallbacks = 0

    def eligible(self) -> bool:
        """May the *next* replay call collapse into a single event?"""
        if not self.batched:
            return False
        engine = self.engine
        return (not engine._fault_hooks
                and engine._guard is None
                and len(engine._live) <= 1)

    def replay(self, traces: Iterable[MemTrace],
               lock_cycles_each: float = 0.0) -> Generator:
        """DES program replaying ``traces``; returns ``List[ExecutionResult]``.

        Drive with ``engine.run_process`` (or ``yield from`` it inside a
        larger program).
        """
        traces = list(traces)
        if self.eligible():
            self.batches += 1
            results = self.core.execute_batch(
                traces, lock_cycles_each=lock_cycles_each)
            total = 0.0
            for result in results:
                total += result.cycles
            if total:
                yield self.engine.timeout(total)
            return results
        if self.batched:
            self.fallbacks += 1
        results: List[ExecutionResult] = []
        for trace in traces:
            result = self.core.execute(trace, lock_cycles=lock_cycles_each)
            if result.cycles:
                yield self.engine.timeout(result.cycles)
            results.append(result)
        return results
