"""Approximate cycle-level multicore simulator (the gem5 substitute).

Public surface:

* :class:`~repro.sim.engine.Engine` — discrete-event kernel.
* :class:`~repro.sim.params.MachineParams` / :data:`SKYLAKE_SP_16C` — machine
  configuration (paper Table 2).
* :class:`~repro.sim.hierarchy.MemoryHierarchy` — L1/L2/NUCA-LLC/DRAM.
* :class:`~repro.sim.core.CoreModel` — OoO core cost model.
* :class:`~repro.sim.trace.Tracer` / :class:`MemTrace` — functional-to-timing
  bridge.
"""

from .cache import Cache, CacheStats
from .calendar import (
    BucketCalendar,
    CALENDARS,
    DEFAULT_CALENDAR,
    HeapCalendar,
    make_calendar,
)
from .core import CoreModel, ExecutionResult
from .engine import Engine, Event, Process, Resource, SimulationError, Store
from .hierarchy import AccessResult, MemoryHierarchy
from .interconnect import Interconnect, MeshInterconnect, build_interconnect
from .memory import AddressAllocator, Dram, OutOfSimulatedMemory, Region
from .replay import TraceReplay, batched_replay_default
from .params import (
    CACHE_LINE_BYTES,
    CacheParams,
    CoreParams,
    HaloParams,
    LatencyParams,
    MachineParams,
    SKYLAKE_SP_16C,
    SocketParams,
    TINY_MACHINE,
    Topology,
)
from .tlb import Tlb, TlbParams, TlbStats
from .stats import Breakdown, RunningStats, geometric_mean, mpkl, throughput_mops
from .trace import (
    CoreTracerRouter,
    InstructionMix,
    MemOp,
    MemOpKind,
    MemTrace,
    NULL_TRACER,
    NullTracer,
    Tracer,
    capture,
)

__all__ = [
    "AccessResult",
    "AddressAllocator",
    "Breakdown",
    "BucketCalendar",
    "CACHE_LINE_BYTES",
    "CALENDARS",
    "DEFAULT_CALENDAR",
    "HeapCalendar",
    "Cache",
    "CacheParams",
    "CacheStats",
    "CoreModel",
    "CoreParams",
    "CoreTracerRouter",
    "Dram",
    "Engine",
    "Event",
    "ExecutionResult",
    "HaloParams",
    "InstructionMix",
    "Interconnect",
    "MeshInterconnect",
    "LatencyParams",
    "MachineParams",
    "MemOp",
    "MemOpKind",
    "MemTrace",
    "MemoryHierarchy",
    "NULL_TRACER",
    "NullTracer",
    "OutOfSimulatedMemory",
    "Process",
    "Region",
    "Resource",
    "RunningStats",
    "SKYLAKE_SP_16C",
    "SimulationError",
    "SocketParams",
    "Store",
    "TINY_MACHINE",
    "Topology",
    "Tlb",
    "TlbParams",
    "TlbStats",
    "TraceReplay",
    "Tracer",
    "batched_replay_default",
    "build_interconnect",
    "capture",
    "geometric_mean",
    "make_calendar",
    "mpkl",
    "throughput_mops",
]
