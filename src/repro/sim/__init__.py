"""Approximate cycle-level multicore simulator (the gem5 substitute).

Public surface:

* :class:`~repro.sim.engine.Engine` — discrete-event kernel.
* :class:`~repro.sim.params.MachineParams` / :data:`SKYLAKE_SP_16C` — machine
  configuration (paper Table 2).
* :class:`~repro.sim.hierarchy.MemoryHierarchy` — L1/L2/NUCA-LLC/DRAM.
* :class:`~repro.sim.core.CoreModel` — OoO core cost model.
* :class:`~repro.sim.trace.Tracer` / :class:`MemTrace` — functional-to-timing
  bridge.
"""

from .cache import Cache, CacheStats
from .core import CoreModel, ExecutionResult
from .engine import Engine, Event, Process, Resource, SimulationError, Store
from .hierarchy import AccessResult, MemoryHierarchy
from .interconnect import Interconnect, MeshInterconnect, build_interconnect
from .memory import AddressAllocator, Dram, OutOfSimulatedMemory, Region
from .params import (
    CACHE_LINE_BYTES,
    CacheParams,
    CoreParams,
    HaloParams,
    LatencyParams,
    MachineParams,
    SKYLAKE_SP_16C,
    TINY_MACHINE,
)
from .tlb import Tlb, TlbParams, TlbStats
from .stats import Breakdown, RunningStats, geometric_mean, mpkl, throughput_mops
from .trace import (
    CoreTracerRouter,
    InstructionMix,
    MemOp,
    MemOpKind,
    MemTrace,
    NULL_TRACER,
    NullTracer,
    Tracer,
    capture,
)

__all__ = [
    "AccessResult",
    "AddressAllocator",
    "Breakdown",
    "CACHE_LINE_BYTES",
    "Cache",
    "CacheParams",
    "CacheStats",
    "CoreModel",
    "CoreParams",
    "CoreTracerRouter",
    "Dram",
    "Engine",
    "Event",
    "ExecutionResult",
    "HaloParams",
    "InstructionMix",
    "Interconnect",
    "MeshInterconnect",
    "LatencyParams",
    "MachineParams",
    "MemOp",
    "MemOpKind",
    "MemTrace",
    "MemoryHierarchy",
    "NULL_TRACER",
    "NullTracer",
    "OutOfSimulatedMemory",
    "Process",
    "Region",
    "Resource",
    "RunningStats",
    "SKYLAKE_SP_16C",
    "SimulationError",
    "Store",
    "TINY_MACHINE",
    "Tlb",
    "TlbParams",
    "TlbStats",
    "Tracer",
    "build_interconnect",
    "capture",
    "geometric_mean",
    "mpkl",
    "throughput_mops",
]
