"""Set-associative cache model with LRU replacement.

Tag-array only (no data payload): the functional layer owns the data; the
cache tracks *presence* so hit/miss behaviour, evictions, and utilisation
emerge from real access streams.  Addresses are byte addresses; the cache
operates on line addresses internally.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from .params import CacheParams


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0
        self.invalidations = self.writebacks = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat scalar view for the metrics registry (pull source)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "accesses": self.accesses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "writebacks": self.writebacks,
            "miss_rate": self.miss_rate,
        }

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Aggregate of two stats blocks (per-level rollups)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
            writebacks=self.writebacks + other.writebacks,
        )


@dataclass(slots=True)
class LineState:
    """Per-line metadata: dirty bit plus HALO's reserved lock bit (§4.4)."""

    dirty: bool = False
    locked: bool = False


class Cache:
    """A single set-associative cache level.

    The per-set structure is an ``OrderedDict`` mapping line address to
    :class:`LineState`, maintained in LRU order (least recent first).
    """

    def __init__(self, name: str, params: CacheParams) -> None:
        if params.num_sets < 1:
            raise ValueError(f"cache {name!r} too small for its associativity")
        num_sets = params.num_sets
        if num_sets & (num_sets - 1):
            raise ValueError(f"cache {name!r} set count must be a power of two")
        self.name = name
        self.params = params
        self.num_sets = num_sets
        self.assoc = params.associativity
        self.line_bytes = params.line_bytes
        self.stats = CacheStats()
        self._sets: Dict[int, OrderedDict] = {}

    # -- address helpers -----------------------------------------------------
    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    def set_index(self, line: int) -> int:
        return line & (self.num_sets - 1)

    def _set_for(self, line: int) -> OrderedDict:
        # Not ``setdefault(..., OrderedDict())``: that would allocate a
        # throwaway OrderedDict on every probe of an existing set, and this
        # runs once per access per level.
        sets = self._sets
        index = line & (self.num_sets - 1)
        cache_set = sets.get(index)
        if cache_set is None:
            cache_set = sets[index] = OrderedDict()
        return cache_set

    # -- operations ----------------------------------------------------------
    def lookup(self, line: int, write: bool = False) -> bool:
        """Probe for ``line``; on hit, refresh LRU (and mark dirty on write)."""
        cache_set = self._set_for(line)
        state = cache_set.get(line)
        if state is None:
            self.stats.misses += 1
            return False
        cache_set.move_to_end(line)
        if write:
            state.dirty = True
        self.stats.hits += 1
        return True

    def fill(self, line: int, dirty: bool = False) -> Optional[int]:
        """Install ``line``; return the evicted line address, if any.

        A locked victim is skipped (HALO's lock bit pins the line); the next
        least-recently-used unlocked line is evicted instead.
        """
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set.move_to_end(line)
            if dirty:
                cache_set[line].dirty = True
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            for candidate, state in cache_set.items():
                if not state.locked:
                    victim = candidate
                    break
            if victim is None:
                # Pathological: whole set locked.  Evict true LRU anyway.
                victim = next(iter(cache_set))
            victim_state = cache_set.pop(victim)
            self.stats.evictions += 1
            if victim_state.dirty:
                self.stats.writebacks += 1
        cache_set[line] = LineState(dirty=dirty)
        return victim

    def contains(self, line: int) -> bool:
        return line in self._sets.get(self.set_index(line), ())

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; refuses if the HALO lock bit is set."""
        cache_set = self._sets.get(self.set_index(line))
        if cache_set is None or line not in cache_set:
            return False
        if cache_set[line].locked:
            return False  # "snoop miss" response: retry later (paper §4.4)
        cache_set.pop(line)
        self.stats.invalidations += 1
        return True

    # -- HALO lock bit (reserved cache-line metadata bit, §4.4) --------------
    def lock(self, line: int) -> bool:
        cache_set = self._sets.get(self.set_index(line))
        if cache_set is None or line not in cache_set:
            return False
        cache_set[line].locked = True
        return True

    def unlock(self, line: int) -> bool:
        cache_set = self._sets.get(self.set_index(line))
        if cache_set is None or line not in cache_set:
            return False
        cache_set[line].locked = False
        return True

    def is_locked(self, line: int) -> bool:
        cache_set = self._sets.get(self.set_index(line))
        if cache_set is None:
            return False
        state = cache_set.get(line)
        return bool(state and state.locked)

    # -- introspection --------------------------------------------------------
    def metrics_source(self):
        """A pull-source callable exposing this cache's stats + occupancy."""
        def read() -> Dict[str, float]:
            out = self.stats.as_dict()
            out["utilisation"] = self.utilisation()
            return out
        return read

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets.values())

    @property
    def locked_lines(self) -> int:
        """Resident lines whose HALO lock bit is currently set."""
        return sum(1 for s in self._sets.values()
                   for state in s.values() if state.locked)

    def utilisation(self) -> float:
        """Fraction of capacity currently holding lines."""
        capacity = self.num_sets * self.assoc
        return self.resident_lines / capacity if capacity else 0.0

    def flush(self) -> None:
        self._sets.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Cache({self.name}, {self.params.size_bytes}B, "
                f"{self.assoc}-way, {self.resident_lines} lines)")
