"""Simplified directory coherence: a snoop filter with core-valid bits.

The LLC's CHA keeps, per line, the set of private caches (cores) that may
hold the line, plus HALO's extra core-valid bit marking presence in an
accelerator's metadata cache (paper §4.3).  We model the *cost-relevant*
subset of MESI:

* a store to a line present in other cores triggers invalidations
  (``snoop_invalidate`` latency, one round trip regardless of sharer count —
  snoops travel in parallel);
* an invalidation attempt against a line whose HALO lock bit is set gets a
  "snoop miss" and must retry (paper §4.4), modelled as bounded retries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set


@dataclass
class CoherenceStats:
    invalidation_rounds: int = 0
    lines_invalidated: int = 0
    snoop_misses: int = 0       # refused by a HALO lock bit
    metadata_snoops: int = 0    # snoops routed into a metadata cache


class SnoopFilter:
    """Tracks which cores (and metadata caches) may hold each line."""

    def __init__(self, cores: int, slices: int) -> None:
        self.cores = cores
        self.slices = slices
        self.stats = CoherenceStats()
        self._sharers: Dict[int, Set[int]] = {}
        # HALO's additional CV bit: line -> slice whose metadata cache holds it.
        self._metadata_holder: Dict[int, int] = {}

    # -- sharer tracking -------------------------------------------------------
    def record_fill(self, line: int, core_id: int) -> None:
        self._sharers.setdefault(line, set()).add(core_id)

    def record_eviction(self, line: int, core_id: int) -> None:
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(core_id)
            if not sharers:
                self._sharers.pop(line, None)

    def sharers_of(self, line: int) -> Set[int]:
        return set(self._sharers.get(line, ()))

    def other_sharers(self, line: int, core_id: int) -> Set[int]:
        return self.sharers_of(line) - {core_id}

    # -- HALO metadata-cache CV bit (paper §4.3) -------------------------------
    def set_metadata_holder(self, line: int, slice_id: int) -> None:
        self._metadata_holder[line] = slice_id

    def clear_metadata_holder(self, line: int) -> None:
        self._metadata_holder.pop(line, None)

    def metadata_holder(self, line: int) -> int:
        """Slice holding the line in its metadata cache, or -1."""
        return self._metadata_holder.get(line, -1)

    # -- invalidation cost model -----------------------------------------------
    def invalidate_for_store(self, line: int, writer_core: int,
                             locked: bool = False) -> dict:
        """Account a write needing exclusive ownership.

        Returns ``{"sharers": n, "snoop_miss": bool, "metadata_snoop": bool}``.
        When ``locked`` (HALO lock bit set on the LLC copy), the invalidation
        is refused and must be retried by the caller.
        """
        result = {"sharers": 0, "snoop_miss": False, "metadata_snoop": False}
        if locked:
            self.stats.snoop_misses += 1
            result["snoop_miss"] = True
            return result
        others = self.other_sharers(line, writer_core)
        if others:
            self.stats.invalidation_rounds += 1
            self.stats.lines_invalidated += len(others)
            self._sharers[line] = {writer_core}
            result["sharers"] = len(others)
        else:
            self.record_fill(line, writer_core)
        if line in self._metadata_holder:
            # Read-for-ownership also invalidates the metadata-cache copy.
            self.stats.metadata_snoops += 1
            self._metadata_holder.pop(line, None)
            result["metadata_snoop"] = True
        return result
