"""Discrete-event simulation engine.

A deliberately small, deterministic event-driven kernel in the spirit of
SimPy, tuned for cycle-level architecture modelling.  Time is measured in
integer (or float) *cycles*.  The engine provides:

* :class:`Engine` — the event loop with a binary-heap calendar.
* :class:`Process` — a coroutine (generator) driven by the engine.  A process
  ``yield``\\ s *waitables*: a cycle delay (``yield engine.timeout(n)``), an
  :class:`Event`, or a resource request.
* :class:`Event` — a one-shot completion signal carrying an optional value.
* :class:`Resource` — a counting resource with a FIFO wait queue (used to
  model scoreboard slots, queue ports, MSHRs, ...).
* :class:`Store` — an unbounded FIFO message channel (command/result queues).

The kernel is single-threaded and fully deterministic: events scheduled for
the same cycle fire in insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional


class SimulationError(RuntimeError):
    """Raised for illegal engine usage (e.g. waiting on a triggered event)."""


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` triggers it, wakes all
    waiting processes, and records ``value``.  Triggering twice is an error.
    """

    __slots__ = ("engine", "triggered", "value", "_waiters", "callbacks")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []
        self.callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to every waiter."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for callback in self.callbacks:
            callback(self)
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine._schedule(self.engine.now, process, value)
        return self

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            # Already done: resume the process immediately (same cycle).
            self.engine._schedule(self.engine.now, process, self.value)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float) -> None:
        super().__init__(engine)
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        engine._schedule_event(engine.now + delay, self)


class Process:
    """A generator-based simulated process.

    The generator may ``yield``:

    * an :class:`Event` (including :class:`Timeout`) — resumes when it fires,
      receiving the event's value;
    * ``None`` — resumes on the same cycle (a cooperative yield point).

    The process itself is an :class:`Event` — it triggers with the
    generator's return value when the generator finishes, so processes can
    wait on each other (fork/join).
    """

    __slots__ = ("engine", "generator", "done", "result", "_waiters", "name")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self._waiters: List["Process"] = []
        engine._schedule(engine.now, self, None)

    # Event-like interface so processes can be awaited with `yield proc`.
    @property
    def triggered(self) -> bool:
        return self.done

    @property
    def value(self) -> Any:
        return self.result

    def _add_waiter(self, process: "Process") -> None:
        if self.done:
            self.engine._schedule(self.engine.now, process, self.result)
        else:
            self._waiters.append(process)

    def _step(self, send_value: Any) -> None:
        try:
            target = self.generator.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                self.engine._schedule(self.engine.now, waiter, self.result)
            return
        if target is None:
            self.engine._schedule(self.engine.now, self, None)
        elif isinstance(target, (Event, Process)):
            target._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )


class Resource:
    """A counting resource with ``capacity`` slots and a FIFO wait queue."""

    __slots__ = ("engine", "capacity", "in_use", "_queue", "peak_queue", "total_waits")

    def __init__(self, engine: "Engine", capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._queue: List[Event] = []
        self.peak_queue = 0
        self.total_waits = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        """Return an event that fires once a slot is granted."""
        event = Event(self.engine)
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            event.succeed(self)
        else:
            self.total_waits += 1
            self._queue.append(event)
            self.peak_queue = max(self.peak_queue, len(self._queue))
        return event

    def release(self) -> None:
        """Free one slot, waking the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release without matching acquire")
        if self._queue:
            # Hand the slot directly to the next waiter.
            self._queue.pop(0).succeed(self)
        else:
            self.in_use -= 1


class Store:
    """An unbounded FIFO channel between processes."""

    __slots__ = ("engine", "_items", "_getters")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.engine)
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event


class Engine:
    """The simulation kernel: a calendar queue of (time, seq, task)."""

    def __init__(self) -> None:
        self.now: float = 0
        self._calendar: list = []
        self._sequence = itertools.count()
        self.events_processed = 0
        self._fault_hooks: dict = {}

    # -- fault-injection hook bus -------------------------------------------
    def add_fault_hook(self, site: str, hook: Callable) -> None:
        """Register a fault hook at a named seam (one hook per site).

        Model code polls seams via :meth:`fault_hook`; with no hook the
        poll is a single empty-dict check, so an uninstrumented run pays
        no simulated time and (near) no host time.
        """
        if site in self._fault_hooks:
            raise SimulationError(f"fault hook already installed at {site!r}")
        self._fault_hooks[site] = hook

    def remove_fault_hook(self, site: str) -> None:
        self._fault_hooks.pop(site, None)

    def fault_hook(self, site: str) -> Optional[Callable]:
        """The hook installed at ``site``, or None (fast path)."""
        if not self._fault_hooks:
            return None
        return self._fault_hooks.get(site)

    # -- scheduling internals ------------------------------------------------
    def _schedule(self, when: float, process: Process, value: Any) -> None:
        heapq.heappush(self._calendar, (when, next(self._sequence), process, value))

    def _schedule_event(self, when: float, event: Event) -> None:
        heapq.heappush(self._calendar, (when, next(self._sequence), event, None))

    # -- public API ----------------------------------------------------------
    def timeout(self, delay: float) -> Timeout:
        """An event that fires ``delay`` cycles from now."""
        return Timeout(self, delay)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a process starting this cycle."""
        return Process(self, generator, name=name)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    def store(self) -> Store:
        return Store(self)

    def run(self, until: Optional[float] = None) -> float:
        """Drive the calendar until exhaustion or ``until`` cycles.

        Returns the final simulation time.
        """
        while self._calendar:
            when, _seq, task, value = self._calendar[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._calendar)
            self.now = when
            self.events_processed += 1
            if isinstance(task, Process):
                task._step(value)
            else:  # a plain Event scheduled by Timeout
                task.succeed(value)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: register ``generator``, run to completion, return value."""
        process = self.process(generator, name=name)
        self.run()
        if not process.done:
            raise SimulationError(f"process {process.name!r} deadlocked")
        return process.result
