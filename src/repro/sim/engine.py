"""Discrete-event simulation engine.

A deliberately small, deterministic event-driven kernel in the spirit of
SimPy, tuned for cycle-level architecture modelling.  Time is measured in
integer (or float) *cycles*.  The engine provides:

* :class:`Engine` — the event loop over a pluggable calendar queue (see
  :mod:`repro.sim.calendar`): a slot/bucketed calendar by default, the
  legacy flat binary heap behind ``Engine(calendar="heap")``.
* :class:`Process` — a coroutine (generator) driven by the engine.  A process
  ``yield``\\ s *waitables*: a cycle delay (``yield engine.timeout(n)``), an
  :class:`Event`, or a resource request.
* :class:`Event` — a one-shot completion signal carrying an optional value.
* :class:`Resource` — a counting resource with a FIFO wait queue (used to
  model scoreboard slots, queue ports, MSHRs, ...).
* :class:`Store` — an unbounded FIFO message channel (command/result queues).

The kernel is single-threaded and fully deterministic: events scheduled for
the same cycle fire in insertion order, whatever the calendar
implementation — the ordering contract lives in :mod:`repro.sim.calendar`
and the equivalence property suite holds both implementations to it.

The engine also carries the harness safety net's attachment point: an
optional *guard* (see :mod:`repro.guard`) observes every event, enforces
cycle/event/wall-clock budgets, and detects deadlock when the calendar
drains with processes still blocked.  With no guard attached the event
loop is byte-for-byte the unguarded fast path.
"""

from __future__ import annotations

import itertools
import os
from heapq import heappop, heappush
from sys import getrefcount
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from .calendar import BucketCalendar, DEFAULT_CALENDAR, make_calendar

#: Environment toggle for the Timeout free-list (on by default; set to
#: ``0`` to force a fresh allocation per timeout, e.g. for the
#: free-list equivalence property suite).
TIMEOUT_FREELIST_ENV = "REPRO_TIMEOUT_FREELIST"

#: Upper bound on pooled Timeout records.  Steady state needs roughly one
#: per concurrently pending recyclable timeout, which is tiny; the cap only
#: guards against a pathological schedule parking the pool full of husks.
_TIMEOUT_POOL_MAX = 512


def timeout_freelist_default() -> bool:
    """Whether recycled Timeout records are enabled for this process."""
    return os.environ.get(TIMEOUT_FREELIST_ENV, "1").lower() not in (
        "0", "false", "no", "off")


class SimulationError(RuntimeError):
    """Raised for illegal engine usage (e.g. waiting on a triggered event)."""


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` triggers it, wakes all
    waiting processes, and records ``value``.  Triggering twice is an error.

    ``source`` back-references the object that minted the event (a
    :class:`Resource` for acquire events, a :class:`Store` for get events)
    so guard dumps can say *what* a blocked process is queued on.
    ``abandoned`` marks an event whose only waiter was killed while queued
    in a FIFO — :meth:`Resource.release` and :meth:`Store.put` skip such
    events instead of handing a slot or item to a dead process.

    ``callbacks`` starts as a shared empty tuple (events are allocated on
    the hot path; virtually none ever carry callbacks) — assign a list to
    register completion callbacks on a specific event.
    """

    __slots__ = ("engine", "triggered", "value", "_waiters", "callbacks",
                 "source", "abandoned")

    def __init__(self, engine: "Engine", source: Any = None) -> None:
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []
        self.callbacks: Sequence[Callable[["Event"], None]] = ()
        self.source = source
        self.abandoned = False

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to every waiter."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        if self.callbacks:
            for callback in self.callbacks:
                callback(self)
        waiters = self._waiters
        if waiters:
            self._waiters = []
            engine = self.engine
            schedule = engine._schedule
            now = engine.now
            for process in waiters:
                schedule(now, process, value)
        return self

    def _add_waiter(self, process: "Process") -> None:
        if self.triggered:
            # Already done: resume the process immediately (same cycle).
            self.engine._schedule(self.engine.now, process, self.value)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay.

    Allocated once per ``yield engine.timeout(n)`` — the single most
    common allocation in any simulation — so the constructor writes its
    slots directly (no ``super().__init__`` hop) and schedules itself in
    one calendar push.
    """

    __slots__ = ("at",)

    def __init__(self, engine: "Engine", delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.engine = engine
        self.triggered = False
        self.value = None
        self._waiters = []
        self.callbacks = ()
        self.source = None
        self.abandoned = False
        self.at = at = engine.now + delay
        engine._schedule(at, self, None)


class Process:
    """A generator-based simulated process.

    The generator may ``yield``:

    * an :class:`Event` (including :class:`Timeout`) — resumes when it fires,
      receiving the event's value;
    * ``None`` — resumes on the same cycle (a cooperative yield point).

    The process itself is an :class:`Event` — it triggers with the
    generator's return value when the generator finishes, so processes can
    wait on each other (fork/join).
    """

    __slots__ = ("engine", "generator", "done", "result", "_waiters", "name",
                 "waiting_on", "killed")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self._waiters: List["Process"] = []
        #: The waitable this process is currently blocked on (None while
        #: runnable/scheduled) — what a guard's deadlock dump reports.
        self.waiting_on: Optional[Any] = None
        self.killed = False
        engine._live[self] = None
        engine._schedule(engine.now, self, None)

    # Event-like interface so processes can be awaited with `yield proc`.
    @property
    def triggered(self) -> bool:
        return self.done

    @property
    def value(self) -> Any:
        return self.result

    def _add_waiter(self, process: "Process") -> None:
        if self.done:
            self.engine._schedule(self.engine.now, process, self.result)
        else:
            self._waiters.append(process)

    def _step(self, send_value: Any) -> None:
        self.waiting_on = None
        try:
            target = self.generator.send(send_value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            engine = self.engine
            engine._live.pop(self, None)
            waiters = self._waiters
            if waiters:
                self._waiters = []
                schedule = engine._schedule
                now = engine.now
                for waiter in waiters:
                    schedule(now, waiter, self.result)
            return
        if target.__class__ is Timeout:
            # The dominant yield: a fresh (never-triggered unless re-
            # yielded) timeout.  Inlined ``target._add_waiter(self)``.
            self.waiting_on = target
            if target.triggered:
                engine = self.engine
                engine._schedule(engine.now, self, target.value)
            else:
                target._waiters.append(self)
        elif target is None:
            engine = self.engine
            engine._schedule(engine.now, self, None)
        elif isinstance(target, (Event, Process)):
            self.waiting_on = target
            if target.triggered:
                engine = self.engine
                engine._schedule(engine.now, self, target.value)
            else:
                target._waiters.append(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}"
            )

    def kill(self) -> None:
        """Terminate the process immediately (watchdog/harness cleanup).

        The generator is closed (running its ``finally`` blocks), the
        process is marked done with a ``None`` result, and any processes
        joined on it are woken.  If it was blocked, it is detached from
        the waitable; an acquire/get event left with no live waiter is
        marked *abandoned* so :class:`Resource`/:class:`Store` FIFOs skip
        it instead of stranding capacity on a dead process.
        """
        if self.done:
            return
        self.generator.close()
        self.done = True
        self.killed = True
        self.result = None
        target, self.waiting_on = self.waiting_on, None
        if target is not None and not target.triggered:
            try:
                target._waiters.remove(self)
            except ValueError:
                pass
            if (isinstance(target, Event) and not target._waiters
                    and not target.callbacks):
                target.abandoned = True
        self.engine._live.pop(self, None)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.engine._schedule(self.engine.now, waiter, None)


class Resource:
    """A counting resource with ``capacity`` slots and a FIFO wait queue."""

    __slots__ = ("engine", "capacity", "in_use", "_queue", "peak_queue",
                 "total_waits", "dead_skips")

    def __init__(self, engine: "Engine", capacity: int) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._queue: List[Event] = []
        self.peak_queue = 0
        self.total_waits = 0
        self.dead_skips = 0

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self) -> Event:
        """Return an event that fires once a slot is granted."""
        event = Event(self.engine, source=self)
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            event.succeed(self)
        else:
            self.total_waits += 1
            self._queue.append(event)
            self.peak_queue = max(self.peak_queue, len(self._queue))
        return event

    def release(self) -> None:
        """Free one slot, waking the oldest *live* waiter if any.

        A waiter whose process was killed while queued leaves an
        abandoned event behind; handing it the slot would strand capacity
        on a dead process forever, so such entries are skipped (counted
        in ``dead_skips``) until a live waiter — or the free pool — takes
        the slot.
        """
        if self.in_use <= 0:
            raise SimulationError("release without matching acquire")
        while self._queue:
            event = self._queue.pop(0)
            if event.abandoned:
                self.dead_skips += 1
                continue
            # Hand the slot directly to the next waiter.
            event.succeed(self)
            return
        self.in_use -= 1


class Store:
    """An unbounded FIFO channel between processes."""

    __slots__ = ("engine", "_items", "_getters")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self._items: List[Any] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            event = self._getters.pop(0)
            if event.abandoned:
                continue  # the getter's process was killed while queued
            event.succeed(item)
            return
        self._items.append(item)

    def get(self) -> Event:
        event = Event(self.engine, source=self)
        if self._items:
            event.succeed(self._items.pop(0))
        else:
            self._getters.append(event)
        return event


class Engine:
    """The simulation kernel: a calendar queue of (time, seq, task).

    ``calendar`` selects the queue implementation: ``"bucket"`` (default,
    the slot/bucketed calendar — O(1) schedule/pop for the common
    short-delay case) or ``"heap"`` (the legacy flat binary heap kept as
    the ordering model of record).  Both produce bit-identical event
    orders; ``tests/sim/test_calendar_equivalence.py`` holds them to it.
    """

    __slots__ = ("now", "_calendar", "_schedule", "timeout", "_sequence",
                 "events_processed", "_fault_hooks", "_live", "_guard",
                 "_timeout_pool", "_recycle")

    def __init__(self, calendar: str = DEFAULT_CALENDAR,
                 recycle_timeouts: Optional[bool] = None) -> None:
        self.now: float = 0
        self._calendar = make_calendar(calendar)
        self._sequence = itertools.count()
        self.events_processed = 0
        self._fault_hooks: dict = {}
        #: Free-list of fired Timeout records awaiting reuse (see the
        #: specialised drain loop in :meth:`run`): a fired timeout nothing
        #: else references any more is reset and handed back out by the
        #: ``timeout()`` closure instead of allocating a fresh one —
        #: killing the last per-hop allocation on the hot path.
        self._timeout_pool: List[Timeout] = []
        self._recycle = (timeout_freelist_default()
                         if recycle_timeouts is None else recycle_timeouts)
        #: Live (not-yet-done) processes in creation order; the guard's
        #: deadlock dump and :meth:`blocked_processes` read this.
        self._live: Dict[Process, None] = {}
        self._guard: Optional[Any] = None
        #: ``_schedule(when, task, value)`` is *the* scheduling primitive —
        #: called for every event hop, so it is a closure specialised to
        #: the calendar implementation (captured locals, no attribute
        #: hops, no intermediate method layer).  ``timeout(delay)`` — the
        #: single most common engine call — is likewise a closure that
        #: allocates, initialises, and schedules the Timeout in one hop.
        self._schedule = self._make_scheduler()
        self.timeout = self._make_timeout()

    def _make_scheduler(self) -> Callable[[float, Any, Any], None]:
        """Build the calendar-specialised scheduling closure."""
        next_seq = self._sequence.__next__
        calendar = self._calendar
        if isinstance(calendar, BucketCalendar):
            buckets = calendar._buckets
            cycles = calendar._cycles
            get_bucket = buckets.get

            def schedule(when: float, task: Any, value: Any) -> None:
                bucket = get_bucket(cycle := int(when))
                if bucket is None:
                    buckets[cycle] = bucket = []
                    heappush(cycles, cycle)
                heappush(bucket, (when, next_seq(), task, value))
        else:
            push = calendar.push

            def schedule(when: float, task: Any, value: Any) -> None:
                push(when, next_seq(), task, value)
        return schedule

    def _make_timeout(self) -> Callable[[float], "Timeout"]:
        """Build the ``timeout(delay)`` fast-path closure.

        Semantically identical to ``Timeout(self, delay)`` — allocate the
        event, write its slots, schedule it at ``now + delay`` — but in a
        single call frame with the calendar push inlined for the bucket
        calendar.
        """
        next_seq = self._sequence.__next__
        new = Timeout.__new__
        calendar = self._calendar
        if isinstance(calendar, BucketCalendar):
            buckets = calendar._buckets
            cycles = calendar._cycles
            get_bucket = buckets.get
            pool = self._timeout_pool

            def timeout(delay: float) -> Timeout:
                if delay < 0:
                    raise SimulationError(f"negative timeout: {delay}")
                if pool:
                    # Recycled record (see the drain loop): ``_waiters`` is
                    # already an empty list, ``callbacks``/``source`` were
                    # never set on it — only the per-fire state resets.
                    event = pool.pop()
                    event.triggered = False
                    event.value = None
                    event.abandoned = False
                else:
                    event = new(Timeout)
                    event.engine = self
                    event.triggered = False
                    event.value = None
                    event._waiters = []
                    event.callbacks = ()
                    event.source = None
                    event.abandoned = False
                event.at = at = self.now + delay
                bucket = get_bucket(cycle := int(at))
                if bucket is None:
                    buckets[cycle] = bucket = []
                    heappush(cycles, cycle)
                heappush(bucket, (at, next_seq(), event, None))
                return event
        else:
            def timeout(delay: float) -> Timeout:
                return Timeout(self, delay)
        return timeout

    @property
    def calendar_kind(self) -> str:
        """Which calendar implementation this engine runs on."""
        return self._calendar.kind

    # -- guard attachment (``repro.guard``) ---------------------------------
    def attach_guard(self, guard: Any) -> None:
        """Install a guard object observing the event loop.

        The guard must provide ``before_event(engine)`` (called once per
        dispatched event, after ``now`` advances) and ``on_drain(engine)``
        (called when the calendar empties).  An optional
        ``on_attach(engine)`` is called here.  One guard per engine.
        """
        if self._guard is not None:
            raise SimulationError("a guard is already attached")
        self._guard = guard
        on_attach = getattr(guard, "on_attach", None)
        if on_attach is not None:
            on_attach(self)

    def detach_guard(self) -> None:
        self._guard = None

    @property
    def guard(self) -> Optional[Any]:
        return self._guard

    def live_processes(self) -> List[Process]:
        """Every registered process that has not finished."""
        return list(self._live)

    def blocked_processes(self) -> List[Process]:
        """Live processes currently waiting on an event/resource/process
        (as opposed to being scheduled on the calendar)."""
        return [process for process in self._live
                if process.waiting_on is not None]

    def next_event_time(self) -> Optional[float]:
        """Earliest pending calendar time, or ``None`` when nothing is queued.

        Safe to call from *inside* a running process — the windowed
        trace-replay fast path (:mod:`repro.sim.replay`) uses it as the
        horizon up to which no other process can possibly run.  During the
        specialised bucket drain loop the head bucket may be an
        already-emptied husk whose deregistration is deferred to the end of
        the drain, so an empty head falls through to the overflow heap's
        children (only the head bucket can ever be empty).
        """
        calendar = self._calendar
        if type(calendar) is not BucketCalendar:
            return calendar.min_time()
        cycles = calendar._cycles
        if not cycles:
            return None
        bucket = calendar._buckets.get(cycles[0])
        if bucket:
            return bucket[0][0]
        if len(cycles) == 1:
            return None
        head = cycles[1] if len(cycles) == 2 else min(cycles[1], cycles[2])
        return calendar._buckets[head][0][0]

    # -- fault-injection hook bus -------------------------------------------
    def add_fault_hook(self, site: str, hook: Callable) -> None:
        """Register a fault hook at a named seam (one hook per site).

        Model code polls seams via :meth:`fault_hook`; with no hook the
        poll is a single empty-dict check, so an uninstrumented run pays
        no simulated time and (near) no host time.
        """
        if site in self._fault_hooks:
            raise SimulationError(f"fault hook already installed at {site!r}")
        self._fault_hooks[site] = hook

    def remove_fault_hook(self, site: str) -> None:
        self._fault_hooks.pop(site, None)

    def fault_hook(self, site: str) -> Optional[Callable]:
        """The hook installed at ``site``, or None (fast path)."""
        if not self._fault_hooks:
            return None
        return self._fault_hooks.get(site)

    # -- public API ----------------------------------------------------------
    # ``timeout(delay)`` — an event that fires ``delay`` cycles from now —
    # is an instance closure assigned in ``__init__`` (see
    # :meth:`_make_timeout`).

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a process starting this cycle."""
        return Process(self, generator, name=name)

    def resource(self, capacity: int) -> Resource:
        return Resource(self, capacity)

    def store(self) -> Store:
        return Store(self)

    def run(self, until: Optional[float] = None) -> float:
        """Drive the calendar until exhaustion or ``until`` cycles.

        Returns the final simulation time.
        """
        if self._guard is not None:
            return self._run_guarded(until)
        calendar = self._calendar
        pop = calendar.pop
        if until is None:
            # The dominant mode (run to exhaustion): no peek, no bound
            # check — pop and dispatch until the calendar drains.
            events = 0
            try:
                if type(calendar) is BucketCalendar:
                    # Specialised drain loop: the calendar pop is inlined
                    # against the bucket structures so each event costs a
                    # dict probe + tiny heappop instead of a method call.
                    buckets = calendar._buckets
                    cycles = calendar._cycles
                    process_cls = Process
                    timeout_cls = Timeout
                    next_seq = self._sequence.__next__
                    pool = self._timeout_pool
                    recycle = self._recycle
                    refcount = getrefcount
                    while cycles:
                        # Drain one bucket to exhaustion.  All entries pushed
                        # while draining land in this bucket or a later one
                        # (time never rewinds), so the inner loop only has to
                        # re-test the bucket itself — no dict probe, no
                        # cycle-heap peek per event.
                        cycle = cycles[0]
                        bucket = buckets[cycle]
                        while bucket:
                            when, _seq, task, value = heappop(bucket)
                            self.now = when
                            events += 1
                            if task.__class__ is timeout_cls:
                                task.triggered = True
                                if task.callbacks:
                                    for callback in task.callbacks:
                                        callback(task)
                                # No fresh empty list: once ``triggered``
                                # is set nothing reads ``_waiters`` again
                                # (re-yields short-circuit on ``triggered``,
                                # ``kill`` only detaches from untriggered
                                # targets).
                                waiters = task._waiters
                                if waiters:
                                    if bucket:
                                        # Other entries share this bucket:
                                        # wakes go through the calendar, but
                                        # straight into the bucket we are
                                        # draining — skipping the int()/dict
                                        # probe of the generic schedule path.
                                        # ``waiting_on`` goes back to None
                                        # (its documented scheduled state),
                                        # which also releases the waiter's
                                        # reference so the timeout can be
                                        # recycled below.
                                        for process in waiters:
                                            process.waiting_on = None
                                            heappush(
                                                bucket,
                                                (when, next_seq(),
                                                 process, None))
                                    elif len(waiters) == 1:
                                        # Fused wake: the calendar holds
                                        # nothing else at this timestamp
                                        # (bucket drained; all other buckets
                                        # are later cycles), so the scheduled
                                        # wake would be the very next pop —
                                        # step the waiter now and skip the
                                        # push/pop round-trip.  The wake
                                        # still counts as an event so
                                        # `events_processed` matches the
                                        # generic dispatch exactly.
                                        events += 1
                                        waiter = waiters[0]
                                        if not waiter.done:
                                            waiter._step(None)
                                    else:
                                        for process in waiters:
                                            process.waiting_on = None
                                            heappush(
                                                bucket,
                                                (when, next_seq(),
                                                 process, None))
                                # Recycle the fired record when nothing else
                                # references it any more (refcount 2 = the
                                # ``task`` local + getrefcount's argument):
                                # a process that kept the timeout — e.g.
                                # ``t = engine.timeout(n); yield t`` — or a
                                # still-set ``waiting_on`` pins it and the
                                # record is simply left to the GC.
                                if (recycle and not task.callbacks
                                        and refcount(task) == 2
                                        and len(pool) < _TIMEOUT_POOL_MAX):
                                    waiters.clear()
                                    pool.append(task)
                            elif (task.__class__ is process_cls
                                    or isinstance(task, process_cls)):
                                if not task.done:  # killed procs: stale entries
                                    task._step(value)
                            else:
                                task.succeed(value)
                        del buckets[cycle]
                        heappop(cycles)
                else:
                    while calendar:
                        when, _seq, task, value = pop()
                        self.now = when
                        events += 1
                        if isinstance(task, Process):
                            if not task.done:
                                task._step(value)
                        else:  # a plain Event scheduled by Timeout
                            task.succeed(value)
            finally:
                self.events_processed += events
                if type(calendar) is BucketCalendar:
                    # If an exception unwound the drain loop between
                    # emptying the head bucket and deregistering it, drop
                    # the empty husk so the calendar stays consistent.
                    cycles = calendar._cycles
                    buckets = calendar._buckets
                    while cycles and not buckets.get(cycles[0]):
                        buckets.pop(cycles[0], None)
                        heappop(cycles)
            return self.now
        min_time = calendar.min_time
        while calendar:
            when = min_time()
            if when > until:
                self.now = until
                return self.now
            when, _seq, task, value = pop()
            self.now = when
            self.events_processed += 1
            if isinstance(task, Process):
                if not task.done:
                    task._step(value)
            else:
                task.succeed(value)
        self.now = max(self.now, until)
        return self.now

    def _run_guarded(self, until: Optional[float] = None) -> float:
        """The :meth:`run` loop with the attached guard in the loop.

        Identical event dispatch — the guard only *observes* (budgets,
        stall/deadlock detection, cadence-sampled invariants), so
        simulated time is bit-identical to an unguarded run; it signals
        trouble by raising ``repro.guard`` errors out of this loop.
        """
        guard = self._guard
        calendar = self._calendar
        while calendar:
            when = calendar.min_time()
            if until is not None and when > until:
                self.now = until
                return self.now
            when, _seq, task, value = calendar.pop()
            self.now = when
            self.events_processed += 1
            guard.before_event(self)
            if isinstance(task, Process):
                if not task.done:
                    task._step(value)
            else:
                task.succeed(value)
        guard.on_drain(self)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: register ``generator``, run to completion, return value."""
        process = self.process(generator, name=name)
        self.run()
        if not process.done:
            raise SimulationError(f"process {process.name!r} deadlocked")
        return process.result
