"""Array kernels for batched trace pricing (numpy optional).

The batched replay fast path (:meth:`repro.sim.core.CoreModel.execute_batch`)
splits into a *sweep* — a serial walk over the captured ops that drives the
stateful cache model access by access, in exactly the order the serial path
would — and *pricing*: turning the collected per-op latencies into per-trace
cycle costs.  The sweep is inherently sequential (every access mutates cache
state); the pricing is pure arithmetic over flat arrays, which is what this
module vectorises.

Bit-exactness contract: every kernel reproduces the serial model's float
operations value-for-value.  Latencies are integers, so wave maxima and
per-trace sums are exact in float64 regardless of summation order; the
compute/floor expressions are evaluated in the same association order as
:meth:`~repro.sim.core.CoreModel.execute`.  The parity-pin suite holds the
vectorised, pure-Python, and serial paths to rel=1e-12 on whole experiments,
and ``tests/sim/test_batch_kernels.py`` pins result-for-result equality.

numpy is an *optional* dependency (the ``fast`` extra): when it is missing —
or disabled via ``REPRO_NO_NUMPY=1`` — :func:`numpy_active` reports False and
``execute_batch`` takes the pure-Python fallback, which computes the same
numbers one trace at a time.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

#: Set to a truthy value ("1"/"true"/"yes"/"on") to force the pure-Python
#: pricing fallback even when numpy is importable.  Checked per call, so
#: tests can toggle it with ``monkeypatch.setenv``.
NUMPY_DISABLE_ENV = "REPRO_NO_NUMPY"

try:
    import numpy as np
    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None
    HAS_NUMPY = False


def numpy_active() -> bool:
    """Whether the vectorised pricing kernels are usable right now."""
    if not HAS_NUMPY:
        return False
    return os.environ.get(NUMPY_DISABLE_ENV, "").lower() not in (
        "1", "true", "yes", "on")


def price_batch(latencies: Sequence[int],
                group_starts: Sequence[int],
                group_traces: Sequence[int],
                mix_totals: Sequence[int],
                mlp: int,
                l1_hit: int,
                base_cpi: float,
                compute_overlap: float,
                issue_width: int,
                lock_cycles_each: float,
                ) -> Tuple[List[float], List[float], List[float],
                           List[int], List[int]]:
    """Price a swept batch; returns per-trace and histogram aggregates.

    Inputs describe the flat access stream: ``latencies[i]`` is the i-th
    access's latency, ``group_starts[g]`` the op index where dependency
    group ``g`` begins, ``group_traces[g]`` the trace that group belongs
    to, ``mix_totals[t]`` trace ``t``'s instruction count.

    Returns ``(totals, compute_parts, memory_parts, hist_values,
    hist_counts)``: per-trace total cycles, the breakdown's compute part
    (floor-adjusted where the issue width binds) and memory part, plus the
    ascending latency histogram (value/count pairs) for the deferred
    metrics flush.

    The wave model matches the serial fold: within each dependency group
    latencies sort descending, every ``mlp``-th entry leads a wave, and a
    wave costs ``max(0, leader - l1_hit)``.
    """
    num_traces = len(mix_totals)
    mix = np.asarray(mix_totals, dtype=np.int64)
    lat = np.asarray(latencies, dtype=np.int64)
    ops = lat.shape[0]
    if ops:
        starts = np.asarray(group_starts, dtype=np.int64)
        lengths = np.diff(np.append(starts, ops))
        group_ids = np.repeat(np.arange(starts.shape[0]), lengths)
        # Stable sort: primary key group, secondary descending latency.
        order = np.lexsort((-lat, group_ids))
        sorted_lat = lat[order]
        rank_in_group = np.arange(ops, dtype=np.int64) - np.repeat(
            starts, lengths)
        leaders = (rank_in_group % mlp) == 0
        exposed = sorted_lat[leaders] - l1_hit
        np.maximum(exposed, 0, out=exposed)
        # Sorted blocks stay in group order, so trace-of-op follows the
        # group layout directly.
        trace_of_op = np.repeat(
            np.asarray(group_traces, dtype=np.int64), lengths)
        memory = np.bincount(trace_of_op[leaders], weights=exposed,
                             minlength=num_traces)
        hist_values, hist_counts = np.unique(lat, return_counts=True)
        hist_values = hist_values.tolist()
        hist_counts = hist_counts.tolist()
    else:
        memory = np.zeros(num_traces)
        hist_values = []
        hist_counts = []

    # Same association order as the serial path:
    #   compute = (mix_total * base_cpi) * compute_overlap
    #   total   = (compute + memory) [+ lock]
    #   floor   = mix_total / issue_width  (binds -> gap goes to compute)
    compute = mix * base_cpi * compute_overlap
    total = compute + memory
    if lock_cycles_each:
        total = total + lock_cycles_each
    floor = mix / issue_width
    floor_bound = total < floor
    compute_part = np.where(floor_bound, compute + (floor - total), compute)
    total = np.where(floor_bound, floor, total)
    return (total.tolist(), compute_part.tolist(), memory.tolist(),
            hist_values, hist_counts)
