"""On-chip interconnect: slice hashing and hop latency.

Models the ring/mesh that connects cores, LLC slices/CHAs, and the memory
controller.  Two responsibilities:

* **Slice hashing** — the address-to-slice hash that distributes lines (and
  HALO queries, which reuse the same logic per paper §4.3) evenly across
  LLC slices.
* **Hop latency** — distance-dependent latency between ring stops, the NUCA
  in "Non-Uniform Cache Access".
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import LatencyParams


def _mix64(value: int) -> int:
    """SplitMix64 finaliser — a high-quality stateless mixer."""
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


@dataclass
class InterconnectStats:
    messages: int = 0
    total_hops: int = 0

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        average = self.total_hops / self.messages if self.messages else 0.0
        return {"messages": self.messages, "total_hops": self.total_hops,
                "average_hops": average}


class Interconnect:
    """A bidirectional ring with ``stops`` ring stops.

    Cores and LLC slices share ring-stop indices (core *i* sits next to
    slice *i*), matching the tiled Skylake-SP floorplan.
    """

    def __init__(self, stops: int, latency: LatencyParams) -> None:
        if stops < 1:
            raise ValueError("interconnect needs at least one stop")
        self.stops = stops
        self.latency = latency
        self.stats = InterconnectStats()
        #: Fault seam (``repro.faults``): called per message with
        #: ``(src, dst, hops)``, returns extra cycles (drop → retransmit)
        #: and may bump ``stats`` itself (duplication).  None = uninstalled.
        self.fault_hook = None
        # line -> slice memo: the mapping is a pure stateless hash, and a
        # run touches the same lines over and over, so a dict probe beats
        # re-running the mixer on the per-access hot path.
        self._slice_memo: dict = {}

    def slice_of_line(self, line: int) -> int:
        """The LLC slice (and CHA) owning a cache line."""
        memo = self._slice_memo
        slice_id = memo.get(line)
        if slice_id is None:
            slice_id = memo[line] = _mix64(line) % self.stops
        return slice_id

    def slice_of_table(self, table_base_addr: int) -> int:
        """HALO query-distributor target for a table address (§4.3).

        Reuses the same distribution logic as line hashing, keyed by the
        table's base address so that queries against one table consistently
        land on one accelerator's metadata cache.
        """
        return _mix64(table_base_addr >> 6) % self.stops

    def hops(self, src_stop: int, dst_stop: int) -> int:
        """Shortest-path hop count on the bidirectional ring."""
        distance = abs(src_stop - dst_stop) % self.stops
        return min(distance, self.stops - distance)

    def transfer_latency(self, src_stop: int, dst_stop: int) -> int:
        """Cycles to move one message between two ring stops."""
        hops = self.hops(src_stop, dst_stop)
        self.stats.messages += 1
        self.stats.total_hops += hops
        latency = hops * self.latency.hop
        if self.fault_hook is not None:
            latency += self.fault_hook(src_stop, dst_stop, hops)
        return latency

    def average_hops(self) -> float:
        if not self.stats.messages:
            return 0.0
        return self.stats.total_hops / self.stats.messages


class MeshInterconnect(Interconnect):
    """A 2D mesh with XY routing (the Skylake-SP successor topology).

    Stops are laid out row-major on the smallest near-square grid holding
    ``stops`` tiles; hop distance is the Manhattan distance.  Compared with
    the ring, worst-case distances shrink (O(√n) vs O(n/2)), which mostly
    matters for the NUCA spread and HALO dispatch latency on large chips.
    """

    def __init__(self, stops: int, latency: LatencyParams) -> None:
        super().__init__(stops, latency)
        columns = 1
        while columns * columns < stops:
            columns += 1
        self.columns = columns

    def _coords(self, stop: int) -> tuple:
        return divmod(stop, self.columns)

    def hops(self, src_stop: int, dst_stop: int) -> int:
        src_row, src_col = self._coords(src_stop % self.stops)
        dst_row, dst_col = self._coords(dst_stop % self.stops)
        return abs(src_row - dst_row) + abs(src_col - dst_col)


def build_interconnect(topology: str, stops: int,
                       latency: LatencyParams) -> Interconnect:
    """Factory: ``"ring"`` (default) or ``"mesh"``."""
    if topology == "ring":
        return Interconnect(stops, latency)
    if topology == "mesh":
        return MeshInterconnect(stops, latency)
    raise ValueError(f"unknown interconnect topology {topology!r}")
