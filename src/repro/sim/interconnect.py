"""On-chip (and inter-socket) interconnect: slice hashing and hop latency.

Models the ring/mesh that connects cores, LLC slices/CHAs, and the memory
controller.  Two responsibilities:

* **Slice hashing** — the address-to-slice hash that distributes lines (and
  HALO queries, which reuse the same logic per paper §4.3) evenly across
  LLC slices.  Hashing is *global* across every socket's slices: the
  machine exposes one shared NUCA address space, and remote homes are what
  make cross-socket traffic appear.
* **Hop latency** — distance-dependent latency between stops, the NUCA in
  "Non-Uniform Cache Access".  With a multi-socket
  :class:`~repro.sim.params.Topology`, each socket keeps its own local
  ring/mesh of ``slices_per_socket`` stops and sockets are bridged by a
  fully-connected UPI-like link: a cross-socket message walks its local
  fabric to the socket's link stop (stop 0), pays ``link_latency`` for the
  crossing, then walks the destination socket's fabric.  With one socket
  every formula reduces exactly to the original single-ring arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .params import LatencyParams, Topology


def _mix64(value: int) -> int:
    """SplitMix64 finaliser — a high-quality stateless mixer."""
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


@dataclass
class InterconnectStats:
    messages: int = 0
    total_hops: int = 0
    link_crossings: int = 0    # inter-socket link traversals (0 = 1 socket)

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        average = self.total_hops / self.messages if self.messages else 0.0
        return {"messages": self.messages, "total_hops": self.total_hops,
                "average_hops": average,
                "link_crossings": self.link_crossings}


class Interconnect:
    """A bidirectional ring with ``stops`` ring stops.

    Cores and LLC slices share ring-stop indices (core *i* sits next to
    slice *i*), matching the tiled Skylake-SP floorplan.  When ``topology``
    describes more than one socket, the stops split into per-socket rings
    of ``topology.socket.llc_slices`` stops each; see the module docstring
    for the cross-socket path model.
    """

    def __init__(self, stops: int, latency: LatencyParams,
                 topology: Optional[Topology] = None) -> None:
        if stops < 1:
            raise ValueError("interconnect needs at least one stop")
        self.stops = stops
        self.latency = latency
        self.stats = InterconnectStats()
        self.topology = topology
        self.sockets = topology.sockets if topology is not None else 1
        if self.sockets > 1:
            if stops % self.sockets != 0:
                raise ValueError(
                    f"{stops} stops do not tile {self.sockets} sockets "
                    "evenly; slice counts must match the topology")
            self.local_stops = stops // self.sockets
            self.link_latency = topology.link_latency
        else:
            self.local_stops = stops
            self.link_latency = 0
        #: Fault seam (``repro.faults``): called per message with
        #: ``(src, dst, hops)``, returns extra cycles (drop → retransmit)
        #: and may bump ``stats`` itself (duplication).  None = uninstalled.
        self.fault_hook = None
        # line -> slice memo: the mapping is a pure stateless hash, and a
        # run touches the same lines over and over, so a dict probe beats
        # re-running the mixer on the per-access hot path.
        self._slice_memo: dict = {}

    def slice_of_line(self, line: int) -> int:
        """The LLC slice (and CHA) owning a cache line."""
        memo = self._slice_memo
        slice_id = memo.get(line)
        if slice_id is None:
            slice_id = memo[line] = _mix64(line) % self.stops
        return slice_id

    def slice_of_table(self, table_base_addr: int) -> int:
        """HALO query-distributor target for a table address (§4.3).

        Reuses the same distribution logic as line hashing, keyed by the
        table's base address so that queries against one table consistently
        land on one accelerator's metadata cache.
        """
        return _mix64(table_base_addr >> 6) % self.stops

    def socket_of_stop(self, stop: int) -> int:
        """Which socket a stop (slice/core tile) belongs to."""
        return (stop % self.stops) // self.local_stops

    def _local_distance(self, src_local: int, dst_local: int) -> int:
        """Hop count between two stops of one socket's local fabric."""
        distance = abs(src_local - dst_local) % self.local_stops
        return min(distance, self.local_stops - distance)

    def hops(self, src_stop: int, dst_stop: int) -> int:
        """Shortest-path *fabric* hop count between two stops.

        Same socket: the local ring/mesh distance.  Cross socket: local
        hops to the source socket's link stop (local stop 0) plus local
        hops from the destination socket's link stop — the link crossing
        itself is charged separately (:meth:`link_crossings`).
        """
        src = src_stop % self.stops
        dst = dst_stop % self.stops
        if self.sockets == 1:
            return self._local_distance(src, dst)
        src_socket, src_local = divmod(src, self.local_stops)
        dst_socket, dst_local = divmod(dst, self.local_stops)
        if src_socket == dst_socket:
            return self._local_distance(src_local, dst_local)
        return (self._local_distance(src_local, 0)
                + self._local_distance(dst_local, 0))

    def link_crossings(self, src_stop: int, dst_stop: int) -> int:
        """Inter-socket link traversals between two stops (0 or 1).

        Sockets are fully connected (2- and 4-socket UPI meshes are), so
        any cross-socket message crosses exactly one link.
        """
        if self.sockets == 1:
            return 0
        return (0 if self.socket_of_stop(src_stop)
                == self.socket_of_stop(dst_stop) else 1)

    def transfer_latency(self, src_stop: int, dst_stop: int) -> int:
        """Cycles to move one message between two stops."""
        hops = self.hops(src_stop, dst_stop)
        crossings = self.link_crossings(src_stop, dst_stop)
        self.stats.messages += 1
        self.stats.total_hops += hops
        latency = hops * self.latency.hop
        if crossings:
            self.stats.link_crossings += crossings
            latency += crossings * self.link_latency
        if self.fault_hook is not None:
            latency += self.fault_hook(src_stop, dst_stop, hops)
        return latency

    def average_hops(self) -> float:
        if not self.stats.messages:
            return 0.0
        return self.stats.total_hops / self.stats.messages


class MeshInterconnect(Interconnect):
    """A 2D mesh with XY routing (the Skylake-SP successor topology).

    Each socket's ``local_stops`` tiles are laid out row-major on the
    smallest near-square grid holding them; hop distance is the Manhattan
    distance (cross-socket paths route via each socket's tile 0, as in the
    ring).  Compared with the ring, worst-case distances shrink (O(√n) vs
    O(n/2)), which mostly matters for the NUCA spread and HALO dispatch
    latency on large chips.
    """

    def __init__(self, stops: int, latency: LatencyParams,
                 topology: Optional[Topology] = None) -> None:
        super().__init__(stops, latency, topology)
        columns = 1
        while columns * columns < self.local_stops:
            columns += 1
        self.columns = columns

    def _coords(self, stop: int) -> tuple:
        return divmod(stop, self.columns)

    def _local_distance(self, src_local: int, dst_local: int) -> int:
        src_row, src_col = self._coords(src_local)
        dst_row, dst_col = self._coords(dst_local)
        return abs(src_row - dst_row) + abs(src_col - dst_col)


def build_interconnect(topology: str, stops: int, latency: LatencyParams,
                       socket_topology: Optional[Topology] = None
                       ) -> Interconnect:
    """Factory: ``"ring"`` (default) or ``"mesh"``, optionally multi-socket."""
    if topology == "ring":
        return Interconnect(stops, latency, socket_topology)
    if topology == "mesh":
        return MeshInterconnect(stops, latency, socket_topology)
    raise ValueError(f"unknown interconnect topology {topology!r}")
