"""Out-of-order core cost model.

Replays a :class:`~repro.sim.trace.MemTrace` — the memory operations plus the
instruction mix of one functional operation — against the memory hierarchy
and produces a cycle cost with a compute/memory/locking breakdown.

Modelling choices (approximate cycle level, see DESIGN.md §5):

* Non-memory instructions retire at ``base_cpi`` (OoO issue width folded in).
* Memory operations are organised in *dependency chains* (see
  :class:`~repro.sim.trace.MemOp`); groups within a chain overlap up to the
  core's memory-level parallelism (MSHR limit), consecutive groups serialise
  (pointer chases).
* L1 hits are considered hidden by the OoO window (they overlap compute);
  only the portion of each access beyond the L1 hit latency counts as stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from . import kernels
from .hierarchy import MemoryHierarchy
from .params import CoreParams
from .stats import Breakdown
from .trace import MemOpKind, MemTrace


@dataclass
class ExecutionResult:
    """Cycle cost of replaying one traced operation on a core."""

    cycles: float
    breakdown: Breakdown
    level_counts: Dict[str, int] = field(default_factory=dict)
    loads: int = 0
    stores: int = 0
    instructions: int = 0

    @property
    def compute_cycles(self) -> float:
        return self.breakdown["compute"]

    @property
    def memory_cycles(self) -> float:
        return self.breakdown["memory"]


class CoreModel:
    """Cost model for one core executing traced operations."""

    def __init__(self, core_id: int, hierarchy: MemoryHierarchy,
                 params: CoreParams = None) -> None:
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.params = params or hierarchy.machine.core
        self.retired_instructions = 0
        self.retired_loads = 0
        self.total_cycles = 0.0

    def execute(self, trace: MemTrace,
                lock_cycles: float = 0.0) -> ExecutionResult:
        """Replay ``trace`` from this core; returns the cycle cost.

        The cost is ``max(front-end floor, exposed compute + memory stalls
        + lock overhead)``: the out-of-order window hides most compute behind
        memory and neighbouring instructions (``compute_overlap``), but the
        core can never retire faster than ``issue_width`` instructions/cycle.
        """
        mix = trace.mix
        front_end_floor = mix.total / self.params.issue_width
        compute_cycles = (mix.total * self.params.base_cpi
                          * self.params.compute_overlap)

        memory_cycles = 0.0
        level_counts: Dict[str, int] = {}
        loads = stores = 0
        l1_hit = self.hierarchy.latency.l1_hit
        mlp = self.params.mlp

        for group in trace.dependency_chains():
            # Overlap the group's accesses in waves of size ``mlp``.
            latencies: List[int] = []
            for op in group:
                result = self.hierarchy.core_access(
                    self.core_id, op.addr, write=op.is_store)
                latencies.append(result.latency)
                level_counts[result.level] = (
                    level_counts.get(result.level, 0) + 1)
                if op.is_store:
                    stores += 1
                else:
                    loads += 1
            latencies.sort(reverse=True)
            group_cycles = 0.0
            for start in range(0, len(latencies), mlp):
                wave = latencies[start:start + mlp]
                # Stall = longest access in the wave beyond what the OoO
                # window hides (an L1 hit's worth of latency).
                group_cycles += max(0, wave[0] - l1_hit)
            memory_cycles += group_cycles

        breakdown = Breakdown({
            "compute": compute_cycles,
            "memory": memory_cycles,
        })
        if lock_cycles:
            breakdown.add("locking", lock_cycles)
        total = breakdown.total
        if total < front_end_floor:
            # Front-end bound (small/L1-resident working sets): the issue
            # width limits throughput; attribute the gap to compute.
            breakdown.add("compute", front_end_floor - total)
            total = front_end_floor
        self.retired_instructions += mix.total
        self.retired_loads += loads
        self.total_cycles += total
        return ExecutionResult(
            cycles=total,
            breakdown=breakdown,
            level_counts=level_counts,
            loads=loads,
            stores=stores,
            instructions=mix.total,
        )

    def execute_batch(self, traces,
                      lock_cycles_each: float = 0.0) -> List[ExecutionResult]:
        """Replay many traces with the per-access metric pushes deferred.

        Cycle arithmetic is expression-for-expression :meth:`execute`, and
        the accesses hit the hierarchy in exactly the order the serial path
        would issue them (trace by trace, op by op), so cache state — and
        therefore every latency — evolves identically.  Only the
        *observation* is batched: latencies and level counts are
        aggregated and flushed once through
        :meth:`~repro.sim.hierarchy.MemoryHierarchy.observe_core_accesses`.
        This is the compute half of the ``TraceReplay(batched=True)`` fast
        path (see :mod:`repro.sim.replay`).

        With numpy available (and ``REPRO_NO_NUMPY`` unset) the pricing
        arithmetic runs through the array kernels in
        :mod:`repro.sim.kernels`; otherwise a pure-Python fallback computes
        the same numbers one trace at a time.  Both agree with the serial
        path (see the kernels module's bit-exactness contract).
        """
        if not isinstance(traces, list):
            traces = list(traces)
        if kernels.numpy_active():
            return self._execute_batch_vector(traces, lock_cycles_each)
        return self._execute_batch_python(traces, lock_cycles_each)

    def _execute_batch_python(self, traces, lock_cycles_each: float
                              ) -> List[ExecutionResult]:
        """The pure-Python batch path: per-trace pricing, deferred flush."""
        hierarchy = self.hierarchy
        access = hierarchy.core_accessor(self.core_id)
        latency_counts: Dict[int, int] = {}
        batch_levels: Dict[str, int] = {}
        lock_box = [0]
        price = self._price_trace
        results = [price(trace, access, lock_cycles_each, latency_counts,
                         batch_levels, lock_box)
                   for trace in traces]
        hierarchy.observe_core_accesses(latency_counts, batch_levels,
                                        lock_box[0])
        return results

    def _price_trace(self, trace: MemTrace, access, lock_cycles_each: float,
                     latency_counts: Dict[int, int],
                     batch_levels: Dict[str, int],
                     lock_box: List[int]) -> ExecutionResult:
        """Price one trace with observation deferred into the caller's
        aggregation dicts.  Expression-for-expression :meth:`execute`;
        ``access`` is a :meth:`~repro.sim.hierarchy.MemoryHierarchy.
        core_accessor` closure."""
        l1_hit = self.hierarchy.latency.l1_hit
        params = self.params
        mlp = params.mlp
        latency_get = latency_counts.get
        batch_get = batch_levels.get
        store_kind = MemOpKind.STORE

        mix_total = trace.mix.total
        front_end_floor = mix_total / params.issue_width
        compute_cycles = mix_total * params.base_cpi * params.compute_overlap

        memory_cycles = 0.0
        level_counts: Dict[str, int] = {}
        level_get = level_counts.get
        loads = stores = 0
        lock_retry_total = 0
        # Recorded traces have non-decreasing deps, so the dependency
        # chains are just runs of equal ``dep`` — walk the ops once,
        # closing a wave computation at each dep change, instead of
        # materialising group lists.  Hand-built traces that interleave
        # groups fall back to the generic grouping (which also fixes
        # the access order to match :meth:`execute`).
        ops = trace.ops
        prev_dep = 0
        for op in ops:
            if op[3] < prev_dep:
                groups = trace.dependency_chains()
                break
            prev_dep = op[3]
        else:
            groups = None
        if groups is None:
            latencies: List[int] = []
            add_latency = latencies.append
            current_dep = ops[0][3] if ops else 0
            for op in ops:
                # MemOp fields by index (NamedTuple): 0=addr, 2=kind, 3=dep.
                dep = op[3]
                if dep != current_dep:
                    latencies.sort(reverse=True)
                    group_cycles = 0.0
                    for start in range(0, len(latencies), mlp):
                        exposed = latencies[start] - l1_hit
                        if exposed > 0:
                            group_cycles += exposed
                    memory_cycles += group_cycles
                    latencies = []
                    add_latency = latencies.append
                    current_dep = dep
                write = op[2] is store_kind
                latency, level, retries = access(op[0], write)
                add_latency(latency)
                latency_counts[latency] = latency_get(latency, 0) + 1
                level_counts[level] = level_get(level, 0) + 1
                batch_levels[level] = batch_get(level, 0) + 1
                if retries:
                    lock_retry_total += retries
                if write:
                    stores += 1
                else:
                    loads += 1
            if latencies:
                latencies.sort(reverse=True)
                group_cycles = 0.0
                for start in range(0, len(latencies), mlp):
                    exposed = latencies[start] - l1_hit
                    if exposed > 0:
                        group_cycles += exposed
                memory_cycles += group_cycles
        else:
            for group in groups:
                latencies = []
                add_latency = latencies.append
                for op in group:
                    write = op.kind is store_kind
                    latency, level, retries = access(op.addr, write)
                    add_latency(latency)
                    latency_counts[latency] = latency_get(latency, 0) + 1
                    level_counts[level] = level_get(level, 0) + 1
                    batch_levels[level] = batch_get(level, 0) + 1
                    if retries:
                        lock_retry_total += retries
                    if write:
                        stores += 1
                    else:
                        loads += 1
                latencies.sort(reverse=True)
                # Only the longest access of each MLP wave counts —
                # index into the sorted list instead of slicing waves.
                group_cycles = 0.0
                for start in range(0, len(latencies), mlp):
                    exposed = latencies[start] - l1_hit
                    if exposed > 0:
                        group_cycles += exposed
                memory_cycles += group_cycles
        if lock_retry_total:
            lock_box[0] += lock_retry_total

        # Inline Breakdown assembly (same float-add order as the
        # ``Breakdown``/``add``/``total`` calls in :meth:`execute`).
        parts = {"compute": compute_cycles, "memory": memory_cycles}
        total = compute_cycles + memory_cycles
        if lock_cycles_each:
            parts["locking"] = lock_cycles_each
            total += lock_cycles_each
        if total < front_end_floor:
            parts["compute"] = compute_cycles + (front_end_floor - total)
            total = front_end_floor
        breakdown = Breakdown.__new__(Breakdown)
        breakdown.parts = parts
        # Same per-trace accumulation order as ``execute`` so the
        # floating-point core totals match bit for bit.
        self.retired_instructions += mix_total
        self.retired_loads += loads
        self.total_cycles += total
        return ExecutionResult(
            cycles=total,
            breakdown=breakdown,
            level_counts=level_counts,
            loads=loads,
            stores=stores,
            instructions=mix_total,
        )

    def _execute_batch_vector(self, traces, lock_cycles_each: float
                              ) -> List[ExecutionResult]:
        """The vectorised batch path: serial access sweep, array pricing.

        The sweep drives the (stateful) hierarchy op by op in serial order
        and records a flat latency stream plus dependency-group geometry;
        :func:`repro.sim.kernels.price_batch` then does all the wave/floor
        arithmetic in numpy.  Per-trace level counts stay in the sweep
        (they are dict-shaped anyway), as does the store/load split.
        """
        hierarchy = self.hierarchy
        access = hierarchy.core_accessor(self.core_id)
        store_kind = MemOpKind.STORE

        latencies: List[int] = []
        add_latency = latencies.append
        group_starts: List[int] = []
        add_group = group_starts.append
        group_traces: List[int] = []
        add_group_trace = group_traces.append
        batch_levels: Dict[str, int] = {}
        batch_get = batch_levels.get
        lock_retry_total = 0
        #: (mix_total, level_counts, loads, stores) per trace.
        per_trace: List[tuple] = []

        index = 0
        trace_index = 0
        for trace in traces:
            level_counts: Dict[str, int] = {}
            level_get = level_counts.get
            stores = 0
            ops = trace.ops
            prev_dep = 0
            for op in ops:
                if op[3] < prev_dep:
                    groups = trace.dependency_chains()
                    break
                prev_dep = op[3]
            else:
                groups = None
            if groups is None:
                current_dep = ops[0][3] if ops else 0
                if ops:
                    add_group(index)
                    add_group_trace(trace_index)
                for op in ops:
                    dep = op[3]
                    if dep != current_dep:
                        add_group(index)
                        add_group_trace(trace_index)
                        current_dep = dep
                    write = op[2] is store_kind
                    latency, level, retries = access(op[0], write)
                    add_latency(latency)
                    index += 1
                    level_counts[level] = level_get(level, 0) + 1
                    if retries:
                        lock_retry_total += retries
                    if write:
                        stores += 1
            else:
                for group in groups:
                    if not group:
                        continue
                    add_group(index)
                    add_group_trace(trace_index)
                    for op in group:
                        write = op.kind is store_kind
                        latency, level, retries = access(op.addr, write)
                        add_latency(latency)
                        index += 1
                        level_counts[level] = level_get(level, 0) + 1
                        if retries:
                            lock_retry_total += retries
                        if write:
                            stores += 1
            for level, count in level_counts.items():
                batch_levels[level] = batch_get(level, 0) + count
            per_trace.append((trace.mix.total, level_counts,
                              len(ops) - stores, stores))
            trace_index += 1

        params = self.params
        totals, compute_parts, memory_parts, hist_values, hist_counts = (
            kernels.price_batch(
                latencies, group_starts, group_traces,
                [entry[0] for entry in per_trace],
                params.mlp, self.hierarchy.latency.l1_hit,
                params.base_cpi, params.compute_overlap,
                params.issue_width, lock_cycles_each))

        results: List[ExecutionResult] = []
        append_result = results.append
        new_breakdown = Breakdown.__new__
        breakdown_cls = Breakdown
        result_cls = ExecutionResult
        new_result = ExecutionResult.__new__
        for position, (mix_total, level_counts, loads, stores) in enumerate(
                per_trace):
            total = totals[position]
            parts = {"compute": compute_parts[position],
                     "memory": memory_parts[position]}
            if lock_cycles_each:
                parts["locking"] = lock_cycles_each
            breakdown = new_breakdown(breakdown_cls)
            breakdown.parts = parts
            # Same per-trace accumulation order as ``execute`` so the
            # floating-point core totals match bit for bit.
            self.retired_instructions += mix_total
            self.retired_loads += loads
            self.total_cycles += total
            # Bypass the dataclass __init__ (one per trace on the hot
            # path); a plain dict assignment fills the same fields.
            result = new_result(result_cls)
            result.__dict__ = {
                "cycles": total,
                "breakdown": breakdown,
                "level_counts": level_counts,
                "loads": loads,
                "stores": stores,
                "instructions": mix_total,
            }
            append_result(result)

        # ``zip`` of the ascending unique latencies reproduces the
        # ``sorted(latency_counts)`` flush order of the Python path.
        hierarchy.observe_core_accesses(
            dict(zip(hist_values, hist_counts)), batch_levels,
            lock_retry_total)
        return results

    def execute_window(self, traces, start: int, budget,
                       lock_cycles_each: float = 0.0):
        """Price ``traces[start:]`` serially up to a cycle ``budget``.

        The windowed replay fast path (:mod:`repro.sim.replay`) prices
        traces until the *next* trace would begin at or beyond ``budget``
        cycles from now — the horizon up to which no other process can run
        — so concurrent streams batch between interaction points.  At
        least one trace is always priced (its start is "now" in serial and
        windowed mode alike); ``budget=None`` means unbounded.  Deferred
        observations flush before returning.

        Returns ``(results, total_cycles, next_index)``.
        """
        hierarchy = self.hierarchy
        access = hierarchy.core_accessor(self.core_id)
        latency_counts: Dict[int, int] = {}
        batch_levels: Dict[str, int] = {}
        lock_box = [0]
        price = self._price_trace
        results: List[ExecutionResult] = []
        total = 0.0
        index = start
        count = len(traces)
        while index < count:
            if results and budget is not None and total >= budget:
                break
            result = price(traces[index], access, lock_cycles_each,
                           latency_counts, batch_levels, lock_box)
            total += result.cycles
            results.append(result)
            index += 1
        hierarchy.observe_core_accesses(latency_counts, batch_levels,
                                        lock_box[0])
        return results, total, index

    def execute_program(self, engine, trace: MemTrace,
                        lock_cycles: float = 0.0):
        """Replay ``trace`` as a DES program on ``engine``.

        The cycle arithmetic is exactly :meth:`execute` — the cost is
        computed up front from the current cache state — but the cost is
        then *spent* as simulated time (``yield engine.timeout(...)``), so
        core-side execution occupies the shared engine timeline and can
        interleave with accelerator traffic and other cores.  Returns the
        :class:`ExecutionResult`.
        """
        result = self.execute(trace, lock_cycles=lock_cycles)
        if result.cycles:
            yield engine.timeout(result.cycles)
        return result

    def execute_prefetch_batch(self, traces,
                               lock_cycles_each: float = 0.0
                               ) -> ExecutionResult:
        """Replay a batch with DPDK-style software prefetching.

        ``rte_hash_lookup_bulk`` issues prefetches for every key's buckets
        before any comparison, so the *same-stage* accesses of different
        lookups overlap (bounded by the MSHRs), while each lookup's own
        pointer chase stays serialised.  The result is the aggregate cost
        of the whole batch.
        """
        traces = list(traces)
        if not traces:
            return ExecutionResult(0.0, Breakdown())
        mlp = self.params.mlp
        l1_hit = self.hierarchy.latency.l1_hit

        total_mix_instructions = 0
        compute_cycles = 0.0
        loads = stores = 0
        level_counts: Dict[str, int] = {}
        # stage -> list of access latencies across the whole batch
        stage_latencies: Dict[int, List[int]] = {}
        for trace in traces:
            mix = trace.mix
            total_mix_instructions += mix.total
            compute_cycles += (mix.total * self.params.base_cpi
                               * self.params.compute_overlap)
            for stage, group in enumerate(trace.dependency_chains()):
                bucket = stage_latencies.setdefault(stage, [])
                for op in group:
                    result = self.hierarchy.core_access(
                        self.core_id, op.addr, write=op.is_store)
                    bucket.append(result.latency)
                    level_counts[result.level] = (
                        level_counts.get(result.level, 0) + 1)
                    if op.is_store:
                        stores += 1
                    else:
                        loads += 1

        memory_cycles = 0.0
        for stage in sorted(stage_latencies):
            latencies = sorted(stage_latencies[stage], reverse=True)
            for start in range(0, len(latencies), mlp):
                wave = latencies[start:start + mlp]
                memory_cycles += max(0, wave[0] - l1_hit)

        breakdown = Breakdown({"compute": compute_cycles,
                               "memory": memory_cycles})
        if lock_cycles_each:
            breakdown.add("locking", lock_cycles_each * len(traces))
        total = breakdown.total
        floor = total_mix_instructions / self.params.issue_width
        if total < floor:
            breakdown.add("compute", floor - total)
            total = floor
        self.retired_instructions += total_mix_instructions
        self.retired_loads += loads
        self.total_cycles += total
        return ExecutionResult(cycles=total, breakdown=breakdown,
                               level_counts=level_counts, loads=loads,
                               stores=stores,
                               instructions=total_mix_instructions)

    def execute_many(self, traces, lock_cycles_each: float = 0.0) -> ExecutionResult:
        """Replay a sequence of traces back-to-back; returns the aggregate."""
        total = Breakdown()
        levels: Dict[str, int] = {}
        cycles = 0.0
        loads = stores = instructions = 0
        for trace in traces:
            result = self.execute(trace, lock_cycles=lock_cycles_each)
            cycles += result.cycles
            total = total.merged(result.breakdown)
            for level, count in result.level_counts.items():
                levels[level] = levels.get(level, 0) + count
            loads += result.loads
            stores += result.stores
            instructions += result.instructions
        return ExecutionResult(cycles=cycles, breakdown=total,
                               level_counts=levels, loads=loads,
                               stores=stores, instructions=instructions)
