"""Statistics utilities: breakdowns, running aggregates, rate helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable


class Breakdown:
    """Named additive components of a total (cycles, instructions, energy).

    Used for Figure 3 (per-packet cycle breakdown), Figure 10 (lookup latency
    breakdown) and Table 1 (instruction category breakdown).
    """

    def __init__(self, parts: Dict[str, float] = None) -> None:
        self.parts: Dict[str, float] = dict(parts or {})

    def add(self, name: str, amount: float) -> None:
        self.parts[name] = self.parts.get(name, 0.0) + amount

    def __getitem__(self, name: str) -> float:
        return self.parts.get(name, 0.0)

    def __iter__(self):
        return iter(self.parts.items())

    @property
    def total(self) -> float:
        return sum(self.parts.values())

    def fraction(self, name: str) -> float:
        total = self.total
        return self.parts.get(name, 0.0) / total if total else 0.0

    def fractions(self) -> Dict[str, float]:
        """Per-part shares of the total.

        A zero (or empty) total yields all-zero fractions, matching
        :meth:`fraction` — the two used to disagree (0 vs divide-by-1),
        which only coincided because parts were never negative-summing.
        """
        total = self.total
        if not total:
            return {name: 0.0 for name in self.parts}
        return {name: value / total for name, value in self.parts.items()}

    def scaled(self, factor: float) -> "Breakdown":
        return Breakdown({k: v * factor for k, v in self.parts.items()})

    def merged(self, other: "Breakdown") -> "Breakdown":
        result = Breakdown(self.parts)
        for name, value in other.parts.items():
            result.add(name, value)
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.1f}" for k, v in sorted(self.parts.items()))
        return f"Breakdown({inner})"


@dataclass
class RunningStats:
    """Streaming mean/variance/extremes (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def record(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count


def throughput_mops(operations: int, cycles: float,
                    frequency_ghz: float = 2.1) -> float:
    """Million operations per second at the given clock."""
    if cycles <= 0:
        return 0.0
    seconds = cycles / (frequency_ghz * 1e9)
    return operations / seconds / 1e6


def mpkl(misses: int, loads: int) -> float:
    """Misses per thousand retired loads (Figure 4's metric)."""
    return 1000.0 * misses / loads if loads else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_table(baseline: Dict[str, float],
                  improved: Dict[str, float]) -> Dict[str, float]:
    """Per-key speedup of ``improved`` over ``baseline`` (higher = faster)."""
    table = {}
    for key, base in baseline.items():
        new = improved.get(key)
        if new:
            table[key] = base / new
    return table
