"""Physical address space management and the DRAM model.

Functional data structures obtain real (simulated-physical) address ranges
from :class:`AddressAllocator` so that cache-set conflicts, slice hashing,
and line sharing behave as they would for contiguously allocated hugepage
memory (the paper notes OVS/DPDK use contiguous allocation for hash tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .params import CACHE_LINE_BYTES


class OutOfSimulatedMemory(MemoryError):
    """The simulated physical address space is exhausted."""


@dataclass
class Region:
    """A named, contiguous allocation."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def offset(self, addr: int) -> int:
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} outside region {self.name!r}")
        return addr - self.base


class AddressAllocator:
    """A bump allocator over the simulated physical address space.

    Allocations are cache-line aligned by default (hash-table buckets must
    align to 64 B lines, paper §2.2).  Freeing is not modelled — workloads
    here allocate tables once and run; a free-list would add nothing to the
    reproduced behaviour.
    """

    def __init__(self, size_bytes: int, base: int = 0x1_0000) -> None:
        self.base = base
        self.limit = base + size_bytes
        self._next = base
        self.regions: list = []

    def alloc(self, size: int, name: str = "anon",
              align: int = CACHE_LINE_BYTES) -> Region:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        start = (self._next + align - 1) & ~(align - 1)
        if start + size > self.limit:
            raise OutOfSimulatedMemory(
                f"cannot allocate {size} bytes for {name!r}")
        self._next = start + size
        region = Region(name=name, base=start, size=size)
        self.regions.append(region)
        return region

    @property
    def bytes_used(self) -> int:
        return self._next - self.base

    def region_of(self, addr: int) -> Optional[Region]:
        for region in self.regions:
            if region.contains(addr):
                return region
        return None


@dataclass
class DramStats:
    reads: int = 0
    writes: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        return {"reads": self.reads, "writes": self.writes,
                "accesses": self.accesses}


class Dram:
    """A flat constant-latency DRAM with simple bandwidth-pressure queueing.

    Latency grows mildly once the outstanding-request window saturates,
    approximating bank/channel contention without a full DDR4 timing model —
    the paper's conclusions never hinge on DRAM microtiming, only on "DRAM is
    ~5× slower than LLC".
    """

    def __init__(self, base_latency: int, queue_window: int = 16,
                 pressure_penalty: int = 4) -> None:
        self.base_latency = base_latency
        self.queue_window = queue_window
        self.pressure_penalty = pressure_penalty
        self.stats = DramStats()
        self._outstanding = 0
        #: Fault seam (``repro.faults``): called per access, returns extra
        #: cycles to add (latency-spike injection).  None when uninstalled.
        self.fault_hook = None

    def access_latency(self, write: bool = False) -> int:
        if write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        # A coarse open-loop contention model: every full window of
        # concurrently tracked requests adds one penalty quantum.
        self._outstanding = (self._outstanding + 1) % (self.queue_window * 4)
        pressure = self._outstanding // self.queue_window
        latency = self.base_latency + pressure * self.pressure_penalty
        if self.fault_hook is not None:
            latency += self.fault_hook(write)
        return latency
