"""Machine and latency parameter sets.

The defaults mirror the paper's Table 2 (a Skylake-SP-like part simulated in
gem5): 16 out-of-order cores at 2.1 GHz, 32 KB 8-way L1D, 1 MB 16-way L2,
32 MB 16-way shared LLC split into 16 NUCA slices (one CHA per slice),
DDR4-2400 memory.

Latency anchors are approximate-cycle values calibrated so that the *ratios*
the paper reports hold (see DESIGN.md §5):

* CHA→local-slice data access is ~4.1× faster than core→LLC;
* CHA→DRAM is ~1.6× faster than core→DRAM;
* a software cuckoo lookup costs ~210 instructions (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .tlb import TlbParams

KB = 1024
MB = 1024 * KB
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class SocketParams:
    """One socket's share of the machine: its core and LLC-slice counts.

    The paper's machine is exactly one of these (16 cores, 16 slices);
    a :class:`Topology` stamps out ``sockets`` copies and bridges them
    with an inter-socket link.
    """

    cores: int = 16
    llc_slices: int = 16

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(
                f"SocketParams.cores must be >= 1 (got {self.cores}); "
                "a socket with no cores cannot run workloads")
        if self.llc_slices < 1:
            raise ValueError(
                f"SocketParams.llc_slices must be >= 1 (got "
                f"{self.llc_slices}); slice hashing needs at least one "
                "LLC slice per socket")


@dataclass(frozen=True)
class Topology:
    """Scale-out description: ``sockets`` identical sockets on a link.

    ``sockets == 1`` is the paper's single-socket world and the default
    everywhere; the inter-socket link parameters are then inert (no
    message ever crosses).  Cross-socket transfers pay ``link_latency``
    cycles per crossing on top of the on-chip hop cost (UPI-like).
    """

    sockets: int = 1
    socket: SocketParams = field(default_factory=SocketParams)
    #: One-way cycles added per inter-socket link crossing.
    link_latency: int = 70
    #: Descriptive per-direction link bandwidth (not charged per byte in
    #: the latency model; recorded so shard-level calculations can use it).
    link_bandwidth_gbps: float = 41.6

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError(
                f"Topology.sockets must be >= 1 (got {self.sockets})")
        if self.link_latency < 0:
            raise ValueError(
                f"Topology.link_latency must be >= 0 (got "
                f"{self.link_latency})")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.socket.cores

    @property
    def total_slices(self) -> int:
        return self.sockets * self.socket.llc_slices

    def socket_of_core(self, core_id: int) -> int:
        """Which socket a (global) core id lives on."""
        return (core_id % self.total_cores) // self.socket.cores

    def socket_of_slice(self, slice_id: int) -> int:
        """Which socket a (global) LLC slice id lives on."""
        return (slice_id % self.total_slices) // self.socket.llc_slices

    def local_core(self, core_id: int) -> int:
        """Core index within its socket."""
        return (core_id % self.total_cores) % self.socket.cores

    def local_slice(self, slice_id: int) -> int:
        """Slice index within its socket."""
        return (slice_id % self.total_slices) % self.socket.llc_slices

    def core_on(self, socket: int, local_core: int) -> int:
        """Global core id of ``local_core`` on ``socket`` (placement)."""
        if not 0 <= socket < self.sockets:
            raise ValueError(
                f"socket {socket} out of range: this topology has "
                f"{self.sockets} socket(s) (valid: 0.."
                f"{self.sockets - 1})")
        if not 0 <= local_core < self.socket.cores:
            raise ValueError(
                f"local core {local_core} out of range: each socket has "
                f"{self.socket.cores} core(s) (valid: 0.."
                f"{self.socket.cores - 1})")
        return socket * self.socket.cores + local_core


@dataclass(frozen=True)
class LatencyParams:
    """Access latencies in cycles (load-to-use, from the requester's view)."""

    l1_hit: int = 4
    l2_hit: int = 14
    llc_hit: int = 62          # core -> LLC slice, incl. average ring hops
    dram: int = 230            # core -> DRAM
    hop: int = 1               # one interconnect hop (ring stop to ring stop)
    cha_llc_hit: int = 8       # CHA-side access into its local LLC slice
    cha_dram: int = 140        # CHA -> DRAM (skips core-side queues)
    snoop_invalidate: int = 60 # cross-core invalidation round trip
    dispatch: int = 5          # core -> query distributor -> accelerator
    result_return: int = 5     # accelerator -> core / register write-back


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core cost model parameters."""

    frequency_ghz: float = 2.1
    issue_width: int = 4
    base_cpi: float = 0.5      # achieved CPI on non-stalled instruction mix
    #: Fraction of compute cycles *exposed* (not hidden behind memory or
    #: neighbouring instructions by the OoO window).  With base_cpi=0.5 this
    #: charges mix.total * 0.125 exposed compute cycles per operation, while
    #: the front-end floor (total / issue_width) bounds throughput from below.
    compute_overlap: float = 0.25
    mlp: int = 4               # independent outstanding misses (MSHR-limited)
    rob_entries: int = 192
    lq_entries: int = 128
    sq_entries: int = 128


@dataclass(frozen=True)
class CacheParams:
    """One cache level's geometry."""

    size_bytes: int
    associativity: int
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class HaloParams:
    """HALO accelerator configuration (paper §4.7)."""

    scoreboard_entries: int = 10     # on-the-fly queries per accelerator
    metadata_cache_tables: int = 10  # cached table-metadata entries (640 B)
    hash_latency: int = 3            # fully pipelined hash unit latency
    hash_issue_interval: int = 1     # pipelined: 1 new hash per cycle
    compare_latency: int = 2         # signature/key comparator
    enabled_lock_bits: bool = True


@dataclass(frozen=True)
class MachineParams:
    """The whole simulated machine."""

    cores: int = 16
    llc_slices: int = 16
    l1d: CacheParams = field(default_factory=lambda: CacheParams(32 * KB, 8))
    l2: CacheParams = field(default_factory=lambda: CacheParams(1 * MB, 16))
    llc_slice: CacheParams = field(
        default_factory=lambda: CacheParams(2 * MB, 16)
    )  # 16 x 2MB = 32MB shared LLC
    latency: LatencyParams = field(default_factory=LatencyParams)
    core: CoreParams = field(default_factory=CoreParams)
    halo: HaloParams = field(default_factory=HaloParams)
    dram_bytes: int = 32 * 1024 * MB
    #: On-chip interconnect topology: "ring" or "mesh".
    interconnect: str = "ring"
    #: D-TLB model; None = perfect translation (the DPDK-hugepage steady
    #: state the paper measures).  Use TlbParams.small_pages() to expose
    #: 4 KB-page walk costs (see docs/MODELING.md).
    tlb: Optional[TlbParams] = None
    #: Multi-socket layout; None = single socket (the paper's machine),
    #: derived on demand by :attr:`topo`.  When set, its socket geometry
    #: must tile ``cores``/``llc_slices`` exactly (validated below).
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(
                f"MachineParams.cores must be >= 1 (got {self.cores})")
        if self.llc_slices < 1:
            raise ValueError(
                f"MachineParams.llc_slices must be >= 1 (got "
                f"{self.llc_slices}); the LLC needs at least one slice")
        topo = self.topology
        if topo is None:
            return
        if self.cores % topo.sockets != 0:
            raise ValueError(
                f"MachineParams.cores={self.cores} is not divisible by "
                f"topology.sockets={topo.sockets}; sockets must be "
                "identical — pick cores that tile evenly or adjust "
                "Topology.socket.cores")
        if self.llc_slices % topo.sockets != 0:
            raise ValueError(
                f"MachineParams.llc_slices={self.llc_slices} is not "
                f"divisible by topology.sockets={topo.sockets}; each "
                "socket must hold the same number of LLC slices")
        if topo.total_cores != self.cores:
            raise ValueError(
                f"topology mismatch: {topo.sockets} socket(s) x "
                f"{topo.socket.cores} cores/socket = {topo.total_cores}, "
                f"but MachineParams.cores={self.cores}; set "
                f"SocketParams(cores={self.cores // topo.sockets}, ...) "
                "or scale MachineParams.cores to match")
        if topo.total_slices != self.llc_slices:
            raise ValueError(
                f"topology mismatch: {topo.sockets} socket(s) x "
                f"{topo.socket.llc_slices} slices/socket = "
                f"{topo.total_slices}, but MachineParams.llc_slices="
                f"{self.llc_slices}; set SocketParams(llc_slices="
                f"{self.llc_slices // topo.sockets}, ...) or scale "
                "MachineParams.llc_slices to match")

    @property
    def llc_total_bytes(self) -> int:
        return self.llc_slice.size_bytes * self.llc_slices

    @property
    def topo(self) -> Topology:
        """The effective topology (a derived single socket when unset)."""
        if self.topology is not None:
            return self.topology
        return Topology(sockets=1,
                        socket=SocketParams(cores=self.cores,
                                            llc_slices=self.llc_slices))

    def scaled(self, **overrides) -> "MachineParams":
        """Return a copy with selected fields replaced (ablation helper)."""
        return replace(self, **overrides)

    def scale_out(self, sockets: int, link_latency: int = 70,
                  link_bandwidth_gbps: float = 41.6) -> "MachineParams":
        """Stamp this (single-socket) machine out to ``sockets`` sockets.

        Core and slice counts multiply; per-socket geometry, latencies,
        and cache shapes stay what they were.  ``machine.scale_out(1)``
        is the explicit-topology twin of the default machine and must
        behave bit-identically.
        """
        if self.topology is not None and self.topology.sockets != 1:
            raise ValueError(
                "scale_out starts from a single-socket machine; this one "
                f"already has {self.topology.sockets} sockets")
        topo = Topology(
            sockets=sockets,
            socket=SocketParams(cores=self.cores,
                                llc_slices=self.llc_slices),
            link_latency=link_latency,
            link_bandwidth_gbps=link_bandwidth_gbps)
        return replace(self, cores=self.cores * sockets,
                       llc_slices=self.llc_slices * sockets,
                       topology=topo)


#: The paper's Table 2 machine.
SKYLAKE_SP_16C = MachineParams()

#: A small machine for fast unit tests.
TINY_MACHINE = MachineParams(
    cores=2,
    llc_slices=2,
    l1d=CacheParams(4 * KB, 4),
    l2=CacheParams(16 * KB, 4),
    llc_slice=CacheParams(64 * KB, 8),
)
