"""Machine and latency parameter sets.

The defaults mirror the paper's Table 2 (a Skylake-SP-like part simulated in
gem5): 16 out-of-order cores at 2.1 GHz, 32 KB 8-way L1D, 1 MB 16-way L2,
32 MB 16-way shared LLC split into 16 NUCA slices (one CHA per slice),
DDR4-2400 memory.

Latency anchors are approximate-cycle values calibrated so that the *ratios*
the paper reports hold (see DESIGN.md §5):

* CHA→local-slice data access is ~4.1× faster than core→LLC;
* CHA→DRAM is ~1.6× faster than core→DRAM;
* a software cuckoo lookup costs ~210 instructions (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .tlb import TlbParams

KB = 1024
MB = 1024 * KB
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class LatencyParams:
    """Access latencies in cycles (load-to-use, from the requester's view)."""

    l1_hit: int = 4
    l2_hit: int = 14
    llc_hit: int = 62          # core -> LLC slice, incl. average ring hops
    dram: int = 230            # core -> DRAM
    hop: int = 1               # one interconnect hop (ring stop to ring stop)
    cha_llc_hit: int = 8       # CHA-side access into its local LLC slice
    cha_dram: int = 140        # CHA -> DRAM (skips core-side queues)
    snoop_invalidate: int = 60 # cross-core invalidation round trip
    dispatch: int = 5          # core -> query distributor -> accelerator
    result_return: int = 5     # accelerator -> core / register write-back


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core cost model parameters."""

    frequency_ghz: float = 2.1
    issue_width: int = 4
    base_cpi: float = 0.5      # achieved CPI on non-stalled instruction mix
    #: Fraction of compute cycles *exposed* (not hidden behind memory or
    #: neighbouring instructions by the OoO window).  With base_cpi=0.5 this
    #: charges mix.total * 0.125 exposed compute cycles per operation, while
    #: the front-end floor (total / issue_width) bounds throughput from below.
    compute_overlap: float = 0.25
    mlp: int = 4               # independent outstanding misses (MSHR-limited)
    rob_entries: int = 192
    lq_entries: int = 128
    sq_entries: int = 128


@dataclass(frozen=True)
class CacheParams:
    """One cache level's geometry."""

    size_bytes: int
    associativity: int
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass(frozen=True)
class HaloParams:
    """HALO accelerator configuration (paper §4.7)."""

    scoreboard_entries: int = 10     # on-the-fly queries per accelerator
    metadata_cache_tables: int = 10  # cached table-metadata entries (640 B)
    hash_latency: int = 3            # fully pipelined hash unit latency
    hash_issue_interval: int = 1     # pipelined: 1 new hash per cycle
    compare_latency: int = 2         # signature/key comparator
    enabled_lock_bits: bool = True


@dataclass(frozen=True)
class MachineParams:
    """The whole simulated machine."""

    cores: int = 16
    llc_slices: int = 16
    l1d: CacheParams = field(default_factory=lambda: CacheParams(32 * KB, 8))
    l2: CacheParams = field(default_factory=lambda: CacheParams(1 * MB, 16))
    llc_slice: CacheParams = field(
        default_factory=lambda: CacheParams(2 * MB, 16)
    )  # 16 x 2MB = 32MB shared LLC
    latency: LatencyParams = field(default_factory=LatencyParams)
    core: CoreParams = field(default_factory=CoreParams)
    halo: HaloParams = field(default_factory=HaloParams)
    dram_bytes: int = 32 * 1024 * MB
    #: On-chip interconnect topology: "ring" or "mesh".
    interconnect: str = "ring"
    #: D-TLB model; None = perfect translation (the DPDK-hugepage steady
    #: state the paper measures).  Use TlbParams.small_pages() to expose
    #: 4 KB-page walk costs (see docs/MODELING.md).
    tlb: Optional[TlbParams] = None

    @property
    def llc_total_bytes(self) -> int:
        return self.llc_slice.size_bytes * self.llc_slices

    def scaled(self, **overrides) -> "MachineParams":
        """Return a copy with selected fields replaced (ablation helper)."""
        return replace(self, **overrides)


#: The paper's Table 2 machine.
SKYLAKE_SP_16C = MachineParams()

#: A small machine for fast unit tests.
TINY_MACHINE = MachineParams(
    cores=2,
    llc_slices=2,
    l1d=CacheParams(4 * KB, 4),
    l2=CacheParams(16 * KB, 4),
    llc_slice=CacheParams(64 * KB, 8),
)
