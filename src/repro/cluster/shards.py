"""One vswitch shard's simulation, shaped for supervised-pool dispatch.

A shard is a complete :class:`~repro.core.halo_system.HaloSystem` — its
own engine, memory hierarchy, accelerators — serving exactly the subset
of a cluster-wide key stream that the RSS balancer routed to it.  The
whole workload definition travels as a small picklable ``params`` dict
(stream seeds + the balancer's indirection table), and the shard
re-derives its key subset deterministically; key lists never cross the
process boundary, mirroring how a NIC filters by hash in hardware.

On a multi-socket shard machine the stream splits round-robin over one
pinned core per socket (:class:`~repro.exec.cores.CoreWorkload` with
``socket=``), so per-socket-HALO scaling is exercised inside a shard.

Failover hooks (all optional ``params`` keys, absent in the healthy
path so pre-failover results are bit-identical):

* ``serve_entries`` — serve only keys hashing to these indirection-table
  entries instead of ``shard_of(key) == shard``; how a survivor replays
  exactly the re-steered slice of a dead shard's traffic in a recovery
  round;
* ``latency_offset`` — extra cycles added to every observed latency,
  modelling the detection + re-steer delay a recovered flow experienced;
* ``shard_faults`` — a serialised
  :class:`~repro.faults.shard_plan.ShardFaultPlan`; inside a pool worker
  a kill decision exits the process (the pool sees a crash), while
  straggler decisions slow every lookup.  Inline dispatch resolves kill
  decisions itself and passes the surviving attempt as
  ``synthetic_attempt`` so both paths realise identical fault histories;
* ``cache_policy``/``cache_entries`` — stream the served keys through an
  :class:`~repro.classifier.emc.ExactMatchCache` under the named policy
  and report the cold-start miss rate (the post-failover refill signal
  ``cluster_chaos`` compares across admission policies).

Public contract: :func:`run_shard`'s ``(label, params, seed)`` signature
and :class:`ShardResult`'s fields are stable — the cluster orchestrator
dispatches ``repro.cluster.shards:run_shard`` by dotted path into
supervised-pool worker processes, so both ends of that pipe (and any
external harness replaying a journal) depend on them not drifting.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram


@dataclass
class ShardResult:
    """What one shard did (picklable; travels back over the pool pipe)."""

    shard: int
    lookups: int
    found: int
    distinct_flows: int
    elapsed_cycles: float
    #: Exported latency histogram state (fixed bounds — merges exactly).
    latency: Dict[str, Any] = field(default_factory=dict)
    #: Selected memory-system counters pulled from ``repro.obs``.
    mem: Dict[str, float] = field(default_factory=dict)
    #: True when this result came from a recovery round (the keys were
    #: re-steered here after their home shard failed).
    degraded: bool = False
    #: Extra per-lookup cycles a straggler fault imposed (0 = healthy).
    straggle_cycles: float = 0.0
    #: Cache-refill measurement (policy, lookups, misses, miss_rate) when
    #: ``cache_policy`` was requested; empty otherwise.
    cache: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_per_kcycle(self) -> float:
        if not self.elapsed_cycles:
            return 0.0
        return self.lookups / self.elapsed_cycles * 1000.0

    def latency_histogram(self) -> Histogram:
        """Rehydrate the exported histogram (for merging/percentiles)."""
        hist = Histogram("cluster.shard.latency",
                         bounds=self.latency.get("bounds",
                                                 DEFAULT_LATENCY_BUCKETS))
        hist.bucket_counts = list(self.latency.get("bucket_counts",
                                                   hist.bucket_counts))
        hist.overflow = self.latency.get("overflow", 0)
        hist.count = self.latency.get("count", 0)
        hist.sum = self.latency.get("sum", 0.0)
        if hist.count:
            hist.min = self.latency.get("min", 0.0)
            hist.max = self.latency.get("max", 0.0)
        return hist


def _export_histogram(hist: Histogram) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "bounds": list(hist.bounds),
        "bucket_counts": list(hist.bucket_counts),
        "overflow": hist.overflow,
        "count": hist.count,
        "sum": hist.sum,
    }
    if hist.count:
        out["min"] = hist.min
        out["max"] = hist.max
    return out


def shard_machine(sockets: int):
    """The shard's simulated machine: the paper's socket, scaled out."""
    from ..sim.params import SKYLAKE_SP_16C

    if sockets == 1:
        return SKYLAKE_SP_16C
    return SKYLAKE_SP_16C.scale_out(sockets)


def run_shard(label: str, params: Dict[str, Any], seed: int) -> ShardResult:
    """Run one shard end to end; the supervised pool's dotted entrypoint.

    ``params`` carries the full cluster workload definition — flow
    count, lookup count, Zipf skew, stream seeds, shard geometry, and
    the balancer's (possibly rebalanced) indirection table — so this
    function is a pure function of ``params``; ``label`` and ``seed``
    are accepted for pool-protocol compatibility and ignored.
    """
    del label, seed
    from ..core.halo_system import HaloSystem
    from ..exec.cores import CoreWorkload
    from ..faults.shard_plan import ShardFaultPlan
    from ..runner.pool import current_attempt
    from .balancer import RssBalancer
    from ..traffic.generator import FlowSet, key_stream

    shard = params["shard"]
    shards = params["shards"]
    sockets = params.get("sockets", 1)
    backend = params.get("backend", "software")
    flow_seed = params["flow_seed"]
    stream_seed = params["stream_seed"]

    # Realise any scheduled shard fault for this attempt.  Inside a pool
    # worker the attempt number comes from the supervision seam and a
    # kill decision exits the process — the pool observes a genuine
    # worker crash.  Inline dispatch resolves kills itself and hands the
    # surviving attempt in as ``synthetic_attempt``.
    straggle = 0.0
    if params.get("shard_faults"):
        plan = ShardFaultPlan.from_params(params["shard_faults"])
        attempt = current_attempt()
        in_worker = attempt is not None
        if attempt is None:
            attempt = params.get("synthetic_attempt")
        if attempt is not None:
            decision = plan.decide(shard, attempt)
            if decision.kill:
                if in_worker:
                    os._exit(70)
                raise RuntimeError(
                    f"shard {shard} is scheduled to die on attempt "
                    f"{attempt}; inline dispatch must resolve kills "
                    f"before calling run_shard")
            straggle = decision.straggle_cycles

    flow_set = FlowSet.generate(params["flows"], seed=flow_seed)
    keys = key_stream(flow_set, params["lookups"],
                      zipf_s=params.get("zipf_s", 0.0), seed=stream_seed)
    balancer = RssBalancer(shards,
                           table_size=params.get("table_size", 128),
                           seed=params.get("balancer_seed", 0))
    if params.get("assignments") is not None:
        balancer.install(params["assignments"])
    serve_entries = params.get("serve_entries")
    if serve_entries is not None:
        wanted = set(serve_entries)
        mine = [key for key in keys if balancer.entry_of(key) in wanted]
    else:
        mine = [key for key in keys if balancer.shard_of(key) == shard]
    distinct = sorted(set(mine))
    degraded = serve_entries is not None
    extra_cycles = float(params.get("latency_offset", 0.0)) + straggle

    machine = shard_machine(sockets)
    system = HaloSystem(machine=machine, observability=True)
    table = system.create_table(params.get("table_capacity", 1 << 10),
                                name=f"shard{shard}")
    for index, key in enumerate(distinct):
        table.insert(key, index)
    system.warm_table(table)

    hist = Histogram("cluster.shard.latency")
    if not mine:
        return ShardResult(shard=shard, lookups=0, found=0,
                           distinct_flows=0, elapsed_cycles=0.0,
                           latency=_export_histogram(hist),
                           degraded=degraded, straggle_cycles=straggle)

    # One PMD core per socket, pinned socket-locally; the stream splits
    # round-robin so every socket serves an equal slice.
    lanes: List[List[bytes]] = [[] for _ in range(sockets)]
    for index, key in enumerate(mine):
        lanes[index % sockets].append(key)
    workloads = [
        CoreWorkload(backend=backend, core_id=0, socket=lane,
                     table=table, keys=lane_keys,
                     name=f"shard{shard}.s{lane}")
        for lane, lane_keys in enumerate(lanes) if lane_keys
    ]
    for workload in workloads:
        system.hierarchy.flush_private(
            machine.topo.core_on(workload.socket, 0))
    run = system.run_cores(workloads)

    found = 0
    for result in run.results:
        for outcome in result.result:
            # extra_cycles is 0.0 on the healthy path, so the addition is
            # exact and pre-failover latencies stay bit-identical.
            hist.observe(outcome.cycles + extra_cycles)
            if outcome.found:
                found += 1

    cache_info: Dict[str, Any] = {}
    cache_policy = params.get("cache_policy")
    if cache_policy:
        from ..classifier.emc import ExactMatchCache
        emc = ExactMatchCache(params.get("cache_entries", 1024),
                              policy=cache_policy,
                              seed=params.get("cache_seed", 0xE3C),
                              name=f"shard{shard}.emc")
        misses = 0
        for index, key in enumerate(mine):
            if emc.lookup_key(key) is None:
                misses += 1
                emc.install_key(key, index)
        cache_info = {"policy": cache_policy, "lookups": len(mine),
                      "misses": misses, "miss_rate": misses / len(mine)}

    snapshot = system.obs.metrics.snapshot()  # flat dotted-key scalars
    mem = {
        "l1_accesses": snapshot.get("mem.l1d.accesses", 0),
        "l1_misses": snapshot.get("mem.l1d.misses", 0),
        "llc_accesses": snapshot.get("mem.llc.accesses", 0),
        "llc_misses": snapshot.get("mem.llc.misses", 0),
        "dram_accesses": (snapshot.get("mem.dram.reads", 0)
                          + snapshot.get("mem.dram.writes", 0)),
        "link_crossings": snapshot.get("mem.interconnect.link_crossings", 0),
    }
    return ShardResult(shard=shard, lookups=len(mine), found=found,
                       distinct_flows=len(distinct),
                       elapsed_cycles=run.elapsed,
                       latency=_export_histogram(hist), mem=mem,
                       degraded=degraded, straggle_cycles=straggle,
                       cache=cache_info)
