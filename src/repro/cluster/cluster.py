"""Cluster orchestration: route, rebalance, run shards, merge results.

:func:`run_cluster` is the scale-out counterpart of a single
:class:`~repro.core.halo_system.HaloSystem` run.  It derives the
cluster-wide key stream from a :class:`ClusterConfig`, routes it through
an :class:`~repro.cluster.balancer.RssBalancer`, optionally performs one
skew-triggered indirection-table rebalance, then runs every shard as an
independent simulation — genuinely in parallel through the supervised
pool (each shard is its own killable process) whenever the current
process may fork, inline otherwise.  The two dispatch modes produce
*identical* shard results: shards are pure functions of their params
dict, and the orchestrator aggregates the same picklable
:class:`~repro.cluster.shards.ShardResult` payloads either way.

Aggregation merges the shards' fixed-bucket latency histograms (exact —
all shards share :data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS`),
sums lookup/hit counters, and models cluster throughput as total
lookups over the *slowest* shard's simulated cycles (shards run
concurrently on separate machines, so the straggler sets the pace).

Public contract: :class:`ClusterConfig`, :class:`ClusterResult`, and
:func:`run_cluster` are stable API — ``repro.analysis`` experiments and
external harnesses build on them.  Dispatch internals (pool vs inline
selection, spec construction) may change without notice.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.metrics import Histogram
from .balancer import RebalanceResult, RssBalancer
from .shards import ShardResult, run_shard

#: Dotted path the supervised pool's children resolve to run one shard.
SHARD_ENTRYPOINT = "repro.cluster.shards:run_shard"


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that defines one cluster run (frozen, hashable-ish).

    ``parallel=None`` (default) auto-selects: supervised-pool dispatch
    when there is more than one shard and the current process is allowed
    to fork children (daemonic pool workers are not — they fall back
    inline, so a cluster run can itself be a pool work unit).
    """

    shards: int = 2
    sockets: int = 1
    flows: int = 256
    lookups: int = 2048
    zipf_s: float = 0.0
    backend: str = "software"
    #: Rewrite the indirection table before running when shard-load
    #: imbalance (``max/mean - 1``) exceeds ``rebalance_threshold``.
    rebalance: bool = False
    rebalance_threshold: float = 0.10
    table_capacity: int = 1 << 10
    table_size: int = 128
    seed: int = 1234
    parallel: Optional[bool] = None
    timeout_s: Optional[float] = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(
                f"ClusterConfig.shards must be >= 1 (got {self.shards})")
        if self.sockets < 1:
            raise ValueError(
                f"ClusterConfig.sockets must be >= 1 (got {self.sockets})")
        if self.lookups < 1:
            raise ValueError(
                f"ClusterConfig.lookups must be >= 1 (got {self.lookups})")


@dataclass
class ClusterResult:
    """Merged view of one cluster run."""

    config: ClusterConfig
    shard_results: List[ShardResult]
    #: ``"pool"`` or ``"inline"`` — which dispatch path actually ran.
    mode: str
    loads_before: List[int] = field(default_factory=list)
    loads_after: List[int] = field(default_factory=list)
    imbalance_before: float = 0.0
    imbalance_after: float = 0.0
    rebalance_moves: int = 0
    rebalanced: bool = False
    total_lookups: int = 0
    total_found: int = 0
    p50_cycles: float = 0.0
    p99_cycles: float = 0.0
    mean_cycles: float = 0.0
    #: Total lookups / slowest shard's simulated cycles, × 1000.
    throughput_per_kcycle: float = 0.0
    #: Slowest shard's simulated cycles (the cluster's makespan).
    makespan_cycles: float = 0.0
    #: Largest shard's share of the stream (1/shards = perfectly even).
    max_shard_fraction: float = 0.0
    link_crossings: int = 0

    def merged_latency(self) -> Histogram:
        """Exact cross-shard latency distribution (fixed-bucket merge)."""
        merged = Histogram("cluster.latency")
        for shard_result in self.shard_results:
            merged = merged.merge(shard_result.latency_histogram())
        return merged


def _shard_params(config: ClusterConfig, shard: int,
                  assignments: List[int]) -> Dict[str, Any]:
    return {
        "shard": shard,
        "shards": config.shards,
        "sockets": config.sockets,
        "backend": config.backend,
        "flows": config.flows,
        "lookups": config.lookups,
        "zipf_s": config.zipf_s,
        "flow_seed": config.seed,
        "stream_seed": config.seed + 1,
        "table_size": config.table_size,
        "balancer_seed": config.seed,
        "assignments": assignments,
        "table_capacity": config.table_capacity,
    }


def _dispatch_pool(config: ClusterConfig,
                   param_sets: List[Dict[str, Any]]) -> List[ShardResult]:
    from ..runner.pool import run_supervised
    from ..runner.schema import RunSpec

    specs = [RunSpec(experiment="cluster", label=f"shard{params['shard']:02d}",
                     params=params, seed=config.seed + params["shard"])
             for params in param_sets]
    outcomes, skipped = run_supervised(
        specs, jobs=min(len(specs), max(1, multiprocessing.cpu_count())),
        timeout_s=config.timeout_s, retries=config.retries,
        entrypoint=SHARD_ENTRYPOINT)
    if skipped:
        raise RuntimeError(
            f"cluster dispatch skipped {len(skipped)} shard(s) "
            "(supervisor stop requested)")
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        worst = failures[0]
        raise RuntimeError(
            f"{len(failures)} shard(s) failed; first: {worst.spec.run_id} "
            f"[{worst.error_type}] {worst.message}")
    by_label = {outcome.spec.label: outcome.payload for outcome in outcomes}
    return [by_label[f"shard{params['shard']:02d}"] for params in param_sets]


def run_cluster(config: ClusterConfig) -> ClusterResult:
    """Run the whole cluster and merge its shards' results.

    Deterministic end to end: the stream, the routing, the (optional)
    rebalance, and every shard simulation derive from ``config`` alone,
    so repeated calls — in either dispatch mode — agree exactly.
    """
    from ..traffic.generator import FlowSet, key_stream

    flow_set = FlowSet.generate(config.flows, seed=config.seed)
    keys = key_stream(flow_set, config.lookups, zipf_s=config.zipf_s,
                      seed=config.seed + 1)

    balancer = RssBalancer(config.shards, table_size=config.table_size,
                           seed=config.seed)
    loads_before = balancer.shard_loads(keys)
    total = sum(loads_before)
    mean = total / config.shards if config.shards else 0.0
    imbalance_before = (max(loads_before) / mean - 1.0) if mean else 0.0

    rebalance_result: Optional[RebalanceResult] = None
    if (config.rebalance and config.shards > 1
            and imbalance_before > config.rebalance_threshold):
        rebalance_result = balancer.rebalance(keys)

    loads_after = balancer.shard_loads(keys)
    imbalance_after = (max(loads_after) / mean - 1.0) if mean else 0.0

    param_sets = [_shard_params(config, shard, list(balancer.table))
                  for shard in range(config.shards)]

    use_pool = (config.parallel is not False and config.shards > 1
                and not multiprocessing.current_process().daemon)
    if config.parallel is True and multiprocessing.current_process().daemon:
        raise RuntimeError(
            "parallel cluster dispatch requested from a daemonic process, "
            "which cannot fork children; use parallel=None (auto) or False")
    if use_pool:
        mode = "pool"
        shard_results = _dispatch_pool(config, param_sets)
    else:
        mode = "inline"
        shard_results = [run_shard(f"shard{params['shard']:02d}", params,
                                   config.seed + params["shard"])
                         for params in param_sets]

    result = ClusterResult(
        config=config, shard_results=shard_results, mode=mode,
        loads_before=loads_before, loads_after=loads_after,
        imbalance_before=imbalance_before, imbalance_after=imbalance_after,
        rebalance_moves=len(rebalance_result.moves) if rebalance_result
        else 0,
        rebalanced=rebalance_result is not None)

    merged = result.merged_latency()
    result.total_lookups = sum(r.lookups for r in shard_results)
    result.total_found = sum(r.found for r in shard_results)
    result.makespan_cycles = max(
        (r.elapsed_cycles for r in shard_results), default=0.0)
    if result.makespan_cycles:
        result.throughput_per_kcycle = (
            result.total_lookups / result.makespan_cycles * 1000.0)
    if merged.count:
        result.p50_cycles = merged.p50
        result.p99_cycles = merged.p99
        result.mean_cycles = merged.mean
    if result.total_lookups:
        result.max_shard_fraction = (
            max(r.lookups for r in shard_results) / result.total_lookups)
    result.link_crossings = int(sum(r.mem.get("link_crossings", 0)
                                    for r in shard_results))
    return result
