"""Cluster orchestration: route, rebalance, run shards, merge results.

:func:`run_cluster` is the scale-out counterpart of a single
:class:`~repro.core.halo_system.HaloSystem` run.  It derives the
cluster-wide key stream from a :class:`ClusterConfig`, routes it through
an :class:`~repro.cluster.balancer.RssBalancer`, optionally performs one
skew-triggered indirection-table rebalance, then runs every shard as an
independent simulation — genuinely in parallel through the supervised
pool (each shard is its own killable process) whenever the current
process may fork, inline otherwise.  The two dispatch modes produce
*identical* shard results: shards are pure functions of their params
dict, and the orchestrator aggregates the same picklable
:class:`~repro.cluster.shards.ShardResult` payloads either way.

Aggregation merges the shards' fixed-bucket latency histograms (exact —
all shards share :data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS`),
sums lookup/hit counters, and models cluster throughput as total
lookups over the *slowest* shard's simulated cycles (shards run
concurrently on separate machines, so the straggler sets the pace).

Failover (``ClusterConfig.failover=True``): a shard whose worker
crashes, times out, or livelocks past its retry budget is *detected*
through the pool's failure-classification seam, marked dead in the
balancer (``fail_shard`` re-steers its indirection-table entries across
survivors), and its flow substream — re-derived from the seed, never
shipped — is replayed through the survivors in a *recovery round* whose
latencies carry the primary round's makespan as a detection/re-steer
offset.  Merged results mark the degraded epochs; zero flows are lost
by construction.  Scheduled chaos (``ClusterConfig.shard_faults``, a
serialised :class:`~repro.faults.shard_plan.ShardFaultPlan`) is realised
inside pool workers as real process deaths and synthesised decision-
for-decision by inline dispatch, so both modes agree bit-identically.

Public contract: :class:`ClusterConfig`, :class:`ClusterResult`, and
:func:`run_cluster` are stable API — ``repro.analysis`` experiments and
external harnesses build on them.  Dispatch internals (pool vs inline
selection, spec construction) may change without notice.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.metrics import Histogram, MetricsRegistry
from ..obs.tracing import TraceRecorder
from .balancer import RebalanceResult, RssBalancer
from .shards import ShardResult, run_shard

#: Dotted path the supervised pool's children resolve to run one shard.
SHARD_ENTRYPOINT = "repro.cluster.shards:run_shard"


@dataclass(frozen=True)
class ClusterConfig:
    """Everything that defines one cluster run (frozen, hashable-ish).

    ``parallel=None`` (default) auto-selects: supervised-pool dispatch
    when there is more than one shard and the current process is allowed
    to fork children (daemonic pool workers are not — they fall back
    inline, so a cluster run can itself be a pool work unit).
    """

    shards: int = 2
    sockets: int = 1
    flows: int = 256
    lookups: int = 2048
    zipf_s: float = 0.0
    backend: str = "software"
    #: Rewrite the indirection table before running when shard-load
    #: imbalance (``max/mean - 1``) exceeds ``rebalance_threshold``.
    rebalance: bool = False
    rebalance_threshold: float = 0.10
    table_capacity: int = 1 << 10
    table_size: int = 128
    seed: int = 1234
    parallel: Optional[bool] = None
    timeout_s: Optional[float] = None
    retries: int = 0
    #: Detect shard failures and re-steer + replay their flows through
    #: the survivors instead of aborting the run.
    failover: bool = False
    #: Simulated cycles one detection + re-steer epoch costs.  Victims
    #: are re-steered one epoch per failed shard (shard-id order); a
    #: victim's recovered flows pay every epoch up to and including
    #: their own.  ``None`` models reactive detection at the end of the
    #: primary round: one epoch = the surviving shards' makespan.
    detection_cycles: Optional[float] = None
    #: Serialised :class:`~repro.faults.shard_plan.ShardFaultPlan`
    #: (``ShardFaultPlan.to_params()``) scheduling shard kills/flaps/
    #: stragglers; ``None`` = healthy cluster.
    shard_faults: Optional[Dict[str, Any]] = None
    #: Stream each shard's served keys through an EMC under this policy
    #: and report refill miss rates (``None`` = skip the measurement).
    cache_policy: Optional[str] = None
    cache_entries: int = 1024

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(
                f"ClusterConfig.shards must be >= 1 (got {self.shards})")
        if self.sockets < 1:
            raise ValueError(
                f"ClusterConfig.sockets must be >= 1 (got {self.sockets})")
        if self.lookups < 1:
            raise ValueError(
                f"ClusterConfig.lookups must be >= 1 (got {self.lookups})")
        if self.cache_entries < 1:
            raise ValueError(
                f"ClusterConfig.cache_entries must be >= 1 "
                f"(got {self.cache_entries})")


@dataclass
class ClusterResult:
    """Merged view of one cluster run."""

    config: ClusterConfig
    shard_results: List[ShardResult]
    #: ``"pool"`` or ``"inline"`` — which dispatch path actually ran.
    mode: str
    loads_before: List[int] = field(default_factory=list)
    loads_after: List[int] = field(default_factory=list)
    imbalance_before: float = 0.0
    imbalance_after: float = 0.0
    rebalance_moves: int = 0
    rebalanced: bool = False
    total_lookups: int = 0
    total_found: int = 0
    p50_cycles: float = 0.0
    p99_cycles: float = 0.0
    mean_cycles: float = 0.0
    #: Total lookups / slowest shard's simulated cycles, × 1000.
    throughput_per_kcycle: float = 0.0
    #: Slowest shard's simulated cycles (the cluster's makespan).
    makespan_cycles: float = 0.0
    #: Largest shard's share of the stream (1/shards = perfectly even).
    max_shard_fraction: float = 0.0
    link_crossings: int = 0
    #: Shards whose workers failed past their retry budget.
    failed_shards: List[int] = field(default_factory=list)
    #: Failed shard -> balancer epoch at which its entries were re-steered.
    degraded_epochs: Dict[int, int] = field(default_factory=dict)
    #: Shard -> per-attempt failure history ({"attempt", "kind"} dicts);
    #: includes flaps that later recovered, not just terminal failures.
    shard_attempt_failures: Dict[int, List[Dict[str, Any]]] = field(
        default_factory=dict)
    #: Configured lookups minus lookups actually served (0 under
    #: failover by construction; the `cluster_chaos` PaperCheck pins it).
    lost_flows: int = 0
    #: Indirection-table entries moved off dead shards.
    resteered_entries: int = 0
    #: Lookups replayed through survivors in recovery rounds.
    recovery_lookups: int = 0

    def merged_latency(self) -> Histogram:
        """Exact cross-shard latency distribution (fixed-bucket merge)."""
        merged = Histogram("cluster.latency")
        for shard_result in self.shard_results:
            merged = merged.merge(shard_result.latency_histogram())
        return merged


def _shard_params(config: ClusterConfig, shard: int,
                  assignments: List[int]) -> Dict[str, Any]:
    params = {
        "shard": shard,
        "shards": config.shards,
        "sockets": config.sockets,
        "backend": config.backend,
        "flows": config.flows,
        "lookups": config.lookups,
        "zipf_s": config.zipf_s,
        "flow_seed": config.seed,
        "stream_seed": config.seed + 1,
        "table_size": config.table_size,
        "balancer_seed": config.seed,
        "assignments": assignments,
        "table_capacity": config.table_capacity,
    }
    # Only added when configured, so healthy-path params (and anything
    # keyed on them, like result caches) are byte-identical to pre-
    # failover builds.
    if config.shard_faults:
        params["shard_faults"] = config.shard_faults
    if config.cache_policy:
        params["cache_policy"] = config.cache_policy
        params["cache_entries"] = config.cache_entries
    return params


def _spec_label(prefix: str, params: Dict[str, Any]) -> str:
    victim = params.get("serve_for")
    if victim is not None:
        # Recovery runs are keyed (victim, survivor): one survivor may
        # replay slices of several dead shards in the same round.
        return f"{prefix}{victim:02d}x{params['shard']:02d}"
    return f"{prefix}{params['shard']:02d}"


def _dispatch_pool_outcomes(config: ClusterConfig,
                            param_sets: List[Dict[str, Any]],
                            label_prefix: str = "shard") -> List[Any]:
    """Dispatch shard params through the supervised pool; returns the
    raw :class:`~repro.runner.pool.PoolOutcome` list (failures included —
    the caller decides whether a dead shard aborts or fails over)."""
    from ..runner.pool import run_supervised
    from ..runner.schema import RunSpec

    specs = [RunSpec(experiment="cluster",
                     label=_spec_label(label_prefix, params),
                     params=params, seed=config.seed + params["shard"])
             for params in param_sets]
    outcomes, skipped = run_supervised(
        specs, jobs=min(len(specs), max(1, multiprocessing.cpu_count())),
        timeout_s=config.timeout_s, retries=config.retries,
        backoff_s=0.05, entrypoint=SHARD_ENTRYPOINT)
    if skipped:
        raise RuntimeError(
            f"cluster dispatch skipped {len(skipped)} shard(s) "
            "(supervisor stop requested)")
    return outcomes


def _dispatch_pool(config: ClusterConfig,
                   param_sets: List[Dict[str, Any]],
                   label_prefix: str = "shard") -> List[ShardResult]:
    outcomes = _dispatch_pool_outcomes(config, param_sets, label_prefix)
    failures = [outcome for outcome in outcomes if not outcome.ok]
    if failures:
        worst = failures[0]
        raise RuntimeError(
            f"{len(failures)} shard(s) failed; first: {worst.spec.run_id} "
            f"[{worst.error_type}] {worst.message}")
    by_label = {outcome.spec.label: outcome.payload for outcome in outcomes}
    return [by_label[_spec_label(label_prefix, params)]
            for params in param_sets]


def run_cluster(config: ClusterConfig,
                metrics: Optional[MetricsRegistry] = None,
                trace: Optional[TraceRecorder] = None) -> ClusterResult:
    """Run the whole cluster and merge its shards' results.

    Deterministic end to end: the stream, the routing, the (optional)
    rebalance, any scheduled faults, and every shard simulation derive
    from ``config`` alone, so repeated calls — in either dispatch mode —
    agree exactly.  ``metrics``/``trace`` opt into ``cluster.failover.*``
    counters and ``failover.resteer`` spans; observation never feeds back
    into the model, so results are identical with or without them.
    """
    from ..traffic.generator import FlowSet, key_stream

    flow_set = FlowSet.generate(config.flows, seed=config.seed)
    keys = key_stream(flow_set, config.lookups, zipf_s=config.zipf_s,
                      seed=config.seed + 1)

    balancer = RssBalancer(config.shards, table_size=config.table_size,
                           seed=config.seed, metrics=metrics, trace=trace)
    loads_before = balancer.shard_loads(keys)
    total = sum(loads_before)
    mean = total / config.shards if config.shards else 0.0
    imbalance_before = (max(loads_before) / mean - 1.0) if mean else 0.0

    rebalance_result: Optional[RebalanceResult] = None
    if (config.rebalance and config.shards > 1
            and imbalance_before > config.rebalance_threshold):
        rebalance_result = balancer.rebalance(keys)

    loads_after = balancer.shard_loads(keys)
    imbalance_after = (max(loads_after) / mean - 1.0) if mean else 0.0

    param_sets = [_shard_params(config, shard, list(balancer.table))
                  for shard in range(config.shards)]

    use_pool = (config.parallel is not False and config.shards > 1
                and not multiprocessing.current_process().daemon)
    if config.parallel is True and multiprocessing.current_process().daemon:
        raise RuntimeError(
            "parallel cluster dispatch requested from a daemonic process, "
            "which cannot fork children; use parallel=None (auto) or False")

    plan = None
    if config.shard_faults:
        from ..faults.shard_plan import ShardFaultPlan
        plan = ShardFaultPlan.from_params(config.shard_faults)

    shard_results: List[ShardResult] = []
    failed: List[int] = []
    attempt_failures: Dict[int, List[Dict[str, Any]]] = {}
    if use_pool:
        mode = "pool"
        if not config.failover and plan is None:
            shard_results = _dispatch_pool(config, param_sets)
        else:
            outcomes = _dispatch_pool_outcomes(config, param_sets)
            for outcome in outcomes:
                shard = outcome.spec.params["shard"]
                history = [{"attempt": f.attempt, "kind": f.kind}
                           for f in outcome.attempt_failures]
                if history:
                    attempt_failures[shard] = history
                if outcome.ok:
                    shard_results.append(outcome.payload)
                else:
                    failed.append(shard)
                    if not config.failover:
                        raise RuntimeError(
                            f"shard {shard} failed "
                            f"({outcome.failure_kind}: {outcome.error_type}"
                            f") and failover is disabled: {outcome.message}")
    else:
        mode = "inline"
        # Inline dispatch synthesises the pool's attempt loop so fault
        # decisions (and therefore results) match pool mode exactly.
        attempts = config.retries + 1
        for params in param_sets:
            shard = params["shard"]
            history: List[Dict[str, Any]] = []
            result_payload: Optional[ShardResult] = None
            for attempt in range(1, attempts + 1):
                if plan is not None and plan.decide(shard, attempt).kill:
                    history.append({"attempt": attempt, "kind": "crash"})
                    continue
                run_params = params
                if plan is not None:
                    run_params = dict(params)
                    run_params["synthetic_attempt"] = attempt
                result_payload = run_shard(f"shard{shard:02d}", run_params,
                                           config.seed + shard)
                break
            if history:
                attempt_failures[shard] = history
            if result_payload is not None:
                shard_results.append(result_payload)
            else:
                failed.append(shard)
                if not config.failover:
                    raise RuntimeError(
                        f"shard {shard} failed (crash: scheduled kill on "
                        f"all {attempts} attempt(s)) and failover is "
                        f"disabled")

    # -- failover: re-steer dead shards' entries, replay their flows ------
    degraded_epochs: Dict[int, int] = {}
    resteered = 0
    recovery_lookups = 0
    if failed:
        pre_table = list(balancer.table)
        victim_rank: Dict[int, int] = {}
        for rank, shard in enumerate(sorted(failed), start=1):
            change = balancer.fail_shard(shard)
            degraded_epochs[shard] = change.epoch
            victim_rank[shard] = rank
            resteered += len(change.moves)
        failed_set = set(failed)
        # Detection + re-steer happens one epoch per victim, in shard-id
        # order; a victim's flows wait out every epoch up to and
        # including its own.  One interval is the configured constant (a
        # supervision timeout in simulated cycles) or, reactively, the
        # primary round's surviving makespan.
        if config.detection_cycles is not None:
            detection = config.detection_cycles
        else:
            detection = max(
                (r.elapsed_cycles for r in shard_results), default=0.0)
        groups: Dict[Any, List[int]] = {}
        for entry, owner in enumerate(pre_table):
            if owner in failed_set:
                groups.setdefault((owner, balancer.table[entry]),
                                  []).append(entry)
        recovery_param_sets = []
        for victim, survivor in sorted(groups):
            params = _shard_params(config, survivor, list(balancer.table))
            params.pop("shard_faults", None)  # recovery runs un-faulted
            params["serve_for"] = victim
            params["serve_entries"] = sorted(groups[(victim, survivor)])
            params["latency_offset"] = victim_rank[victim] * detection
            recovery_param_sets.append(params)
        if use_pool:
            recovery_results = _dispatch_pool(config, recovery_param_sets,
                                              label_prefix="recover")
        else:
            recovery_results = [
                run_shard(_spec_label("recover", params), params,
                          config.seed + params["shard"])
                for params in recovery_param_sets]
        recovery_lookups = sum(r.lookups for r in recovery_results)
        shard_results.extend(recovery_results)
        if metrics is not None:
            metrics.counter("cluster.failover.recovery_rounds").inc()
            metrics.counter(
                "cluster.failover.recovered_flows").inc(recovery_lookups)

    result = ClusterResult(
        config=config, shard_results=shard_results, mode=mode,
        loads_before=loads_before, loads_after=loads_after,
        imbalance_before=imbalance_before, imbalance_after=imbalance_after,
        rebalance_moves=len(rebalance_result.moves) if rebalance_result
        else 0,
        rebalanced=rebalance_result is not None,
        failed_shards=sorted(failed), degraded_epochs=degraded_epochs,
        shard_attempt_failures=attempt_failures,
        resteered_entries=resteered, recovery_lookups=recovery_lookups)

    merged = result.merged_latency()
    result.total_lookups = sum(r.lookups for r in shard_results)
    result.total_found = sum(r.found for r in shard_results)
    result.makespan_cycles = max(
        (r.elapsed_cycles for r in shard_results), default=0.0)
    if result.makespan_cycles:
        result.throughput_per_kcycle = (
            result.total_lookups / result.makespan_cycles * 1000.0)
    if merged.count:
        result.p50_cycles = merged.p50
        result.p99_cycles = merged.p99
        result.mean_cycles = merged.mean
    if result.total_lookups:
        result.max_shard_fraction = (
            max(r.lookups for r in shard_results) / result.total_lookups)
    result.link_crossings = int(sum(r.mem.get("link_crossings", 0)
                                    for r in shard_results))
    result.lost_flows = config.lookups - result.total_lookups
    return result
