"""Sharded vswitch serving: N simulated switch instances behind RSS.

The paper stops at one socket; the scale-out question — when does adding
HALO-equipped sockets stop paying and sharding the flow table across
*separate* vswitch instances take over (§6's evaluation frame, extended)
— needs a cluster model.  This package provides it:

* :class:`~repro.cluster.balancer.RssBalancer` — a deterministic
  RSS-style flow-hash balancer (SplitMix64 over the packed 5-tuple into
  an indirection table) with greedy skew-triggered rebalancing, plus
  failover: ``fail_shard``/``restore_shard`` re-steer a dead shard's
  entries across survivors (minimal-move, epoch-logged).
* :func:`~repro.cluster.shards.run_shard` — one shard's simulation: a
  full :class:`~repro.core.halo_system.HaloSystem` on its own topology,
  serving exactly the keys the balancer routed to it.
* :func:`~repro.cluster.cluster.run_cluster` — the orchestrator: routes
  a key stream, optionally rebalances, runs every shard (genuinely in
  parallel through the supervised pool when the process is allowed to
  fork; inline otherwise — identical results either way), and merges
  the shards' latency histograms and ``repro.obs`` counters.  With
  ``failover=True`` it detects shard failures through the pool's
  classification seam and replays the victims' flows through the
  survivors — zero lost flows by construction.

Public contract: :class:`ClusterConfig` / :class:`ClusterResult` /
:func:`run_cluster`, :class:`RssBalancer` (hash determinism: same seed +
same key bytes → same shard, forever), and :func:`run_shard`'s
``(label, params, seed)`` signature — it is dispatched by dotted path
into supervised-pool workers, so its location and signature are API.
Layering: *nothing* below ``repro.analysis`` may import this package;
experiments reach it, model code never does.
"""

from .balancer import RebalanceResult, RssBalancer, SteeringChange
from .cluster import ClusterConfig, ClusterResult, run_cluster
from .shards import ShardResult, run_shard

__all__ = [
    "ClusterConfig",
    "ClusterResult",
    "RebalanceResult",
    "RssBalancer",
    "ShardResult",
    "SteeringChange",
    "run_cluster",
    "run_shard",
]
