"""Deterministic RSS flow-hash balancer with rebalancing and failover.

Models the NIC receive-side-scaling stage in front of a sharded vswitch
cluster: a stateless hash of the packed 5-tuple indexes a small
*indirection table* whose entries name shards.  Uniform traffic spreads
evenly by construction; skewed (Zipf) traffic piles hot flows onto a few
entries, and :meth:`RssBalancer.rebalance` migrates the hottest entries
off the most-loaded shard exactly the way an RSS indirection-table
rewrite does in hardware — flows move in entry-sized groups, never
individually, and the hash itself never changes.

The same table rewrite is the cluster's failover mechanism.
:meth:`RssBalancer.fail_shard` re-steers every entry routed to a dead
shard across the healthy survivors (fewest-entries-first, lowest id on
ties — deterministic), and :meth:`RssBalancer.restore_shard` is
*minimal-move* by construction: each entry's ``home`` shard is tracked
across deliberate rewrites (``install``/``rebalance``) but not across
failover, so restoring a shard moves back exactly the entries it owned
before it died and nothing else.  Every steering change — install,
rebalance, fail, restore — increments a monotone ``epoch`` and appends a
:class:`SteeringChange` record, which is how ``run_cluster`` marks which
merged results were served degraded.

Determinism is the point: the same ``(seed, key bytes)`` pair maps to
the same entry on every run, every process, every platform (SplitMix64
is exact 64-bit arithmetic), so shard workers can re-derive their own
key subsets from the stream definition instead of shipping key lists
across process boundaries.

Public contract: :class:`RssBalancer` (the pinned ``entry_of`` hash, the
install/rebalance validation behaviour, ``fail_shard``/``restore_shard``
determinism and the minimal-move restore guarantee, and the
``epoch``/``steering_log`` bookkeeping), :class:`RebalanceResult`, and
:class:`SteeringChange` are stable API.  Observability is opt-in: pass
``metrics``/``trace`` to get ``cluster.failover.*`` counters and
``failover.resteer`` spans; omitted, failover runs unobserved with
identical steering decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import TraceRecorder
from ..sim.interconnect import _mix64


@dataclass
class RebalanceResult:
    """What one rebalancing pass did."""

    moves: List[tuple] = field(default_factory=list)  # (entry, from, to)
    max_load_before: int = 0
    max_load_after: int = 0
    loads_before: List[int] = field(default_factory=list)
    loads_after: List[int] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.max_load_after < self.max_load_before


@dataclass(frozen=True)
class SteeringChange:
    """One epoch of indirection-table rewriting: why, what moved."""

    epoch: int
    kind: str                              # install | rebalance | fail | restore
    shard: Optional[int]                   # the failed/restored shard, if any
    moves: Tuple[Tuple[int, int, int], ...]  # (entry, from, to)


class RssBalancer:
    """RSS-style flow→shard mapping through an indirection table.

    ``table_size`` entries (hardware uses 128 or 512) are initialised
    round-robin over ``shards``; :meth:`entry_of` hashes a packed key to
    an entry, :meth:`shard_of` follows the table.  Rebalancing and
    failover rewrite table entries only — the deterministic hash is
    immutable.
    """

    def __init__(self, shards: int, table_size: int = 128,
                 seed: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        if shards < 1:
            raise ValueError(f"RssBalancer needs >= 1 shard (got {shards})")
        if table_size < shards:
            raise ValueError(
                f"indirection table of {table_size} entries cannot cover "
                f"{shards} shards; use table_size >= shards")
        self.shards = shards
        self.table_size = table_size
        self.seed = seed
        self.table: List[int] = [i % shards for i in range(table_size)]
        self._salt = _mix64(seed ^ 0x9E3779B97F4A7C15)
        # Failover bookkeeping.  ``home`` is each entry's deliberate
        # assignment (updated by install/rebalance, *not* by failover);
        # ``health`` marks which shards currently serve; ``epoch`` counts
        # steering changes and ``steering_log`` records each one.
        self.home: List[int] = list(self.table)
        self.health: List[bool] = [True] * shards
        self.epoch: int = 0
        self.steering_log: List[SteeringChange] = []
        self._metrics = metrics
        self._trace = trace

    # -- hashing ---------------------------------------------------------------
    def entry_of(self, key: bytes) -> int:
        """Indirection-table entry for a packed key (pure, stateless)."""
        value = self._salt
        for offset in range(0, len(key), 8):
            word = int.from_bytes(key[offset:offset + 8], "little")
            value = _mix64(value ^ word)
        return value % self.table_size

    def shard_of(self, key: bytes) -> int:
        """The shard currently serving a key."""
        return self.table[self.entry_of(key)]

    def install(self, table: Sequence[int]) -> None:
        """Adopt a previously computed indirection table (shard workers
        re-create the balancer and install the orchestrator's table).

        Validates shape and content before touching any state: a bad
        table raises and leaves the current steering untouched rather
        than silently mis-steering flows."""
        if len(table) != self.table_size:
            raise ValueError(
                f"indirection table length {len(table)} != configured "
                f"table_size {self.table_size}")
        for entry, shard in enumerate(table):
            if isinstance(shard, bool) or not isinstance(shard, int):
                raise ValueError(
                    f"entry {entry} is {shard!r} ({type(shard).__name__}); "
                    f"indirection entries must be shard ids (int)")
            if not 0 <= shard < self.shards:
                raise ValueError(
                    f"entry {entry} routes to shard {shard}, outside "
                    f"0..{self.shards - 1}")
            if not self.health[shard]:
                raise ValueError(
                    f"entry {entry} routes to shard {shard}, which is "
                    f"marked failed; restore it first or re-steer the "
                    f"table around it")
        moves = tuple((entry, old, new) for entry, (old, new)
                      in enumerate(zip(self.table, table)) if old != new)
        self.table = list(table)
        self.home = list(table)
        self._log_change("install", None, moves)

    # -- health ----------------------------------------------------------------
    @property
    def healthy_shards(self) -> List[int]:
        """Shard ids currently marked healthy (serving)."""
        return [s for s in range(self.shards) if self.health[s]]

    @property
    def failed_shards(self) -> List[int]:
        """Shard ids currently marked failed."""
        return [s for s in range(self.shards) if not self.health[s]]

    def fail_shard(self, shard: int) -> SteeringChange:
        """Mark ``shard`` dead and re-steer its entries across survivors.

        Deterministic: entries are visited in index order and each goes
        to the survivor currently holding the fewest entries (lowest id
        on ties), so the post-failover table is a pure function of the
        failure sequence.  ``home`` is left untouched — failover steering
        is temporary by definition, which is what makes
        :meth:`restore_shard` minimal-move.
        """
        self._check_shard_id(shard)
        if not self.health[shard]:
            raise ValueError(f"shard {shard} is already marked failed")
        survivors = [s for s in self.healthy_shards if s != shard]
        if not survivors:
            raise ValueError(
                f"cannot fail shard {shard}: it is the last healthy shard "
                f"and failover needs at least one survivor")
        self.health[shard] = False
        counts = {s: 0 for s in survivors}
        for target in self.table:
            if target in counts:
                counts[target] += 1
        moves = []
        for entry in range(self.table_size):
            if self.table[entry] != shard:
                continue
            receiver = min(survivors, key=lambda s: (counts[s], s))
            self.table[entry] = receiver
            counts[receiver] += 1
            moves.append((entry, shard, receiver))
        change = self._log_change("fail", shard, tuple(moves))
        if self._metrics is not None:
            self._metrics.counter("cluster.failover.fail_events").inc()
            self._metrics.counter(
                "cluster.failover.resteered_entries").inc(len(moves))
            self._metrics.gauge("cluster.failover.unhealthy_shards").set(
                len(self.failed_shards))
        return change

    def restore_shard(self, shard: int) -> SteeringChange:
        """Bring a failed shard back and return exactly its home entries.

        Minimal-move: only entries whose ``home`` is ``shard`` (and that
        failover parked elsewhere) move; entries that never belonged to
        the shard stay where they are, preserving cache warmth on the
        survivors.
        """
        self._check_shard_id(shard)
        if self.health[shard]:
            raise ValueError(f"shard {shard} is not marked failed")
        self.health[shard] = True
        moves = []
        for entry in range(self.table_size):
            if self.home[entry] == shard and self.table[entry] != shard:
                moves.append((entry, self.table[entry], shard))
                self.table[entry] = shard
        change = self._log_change("restore", shard, tuple(moves))
        if self._metrics is not None:
            self._metrics.counter("cluster.failover.restore_events").inc()
            self._metrics.counter(
                "cluster.failover.resteered_entries").inc(len(moves))
            self._metrics.gauge("cluster.failover.unhealthy_shards").set(
                len(self.failed_shards))
        return change

    def _check_shard_id(self, shard: int) -> None:
        if isinstance(shard, bool) or not isinstance(shard, int):
            raise ValueError(f"shard id must be an int, got {shard!r}")
        if not 0 <= shard < self.shards:
            raise ValueError(
                f"shard {shard} outside 0..{self.shards - 1}")

    def _log_change(self, kind: str, shard: Optional[int],
                    moves: Tuple[Tuple[int, int, int], ...]) -> SteeringChange:
        self.epoch += 1
        change = SteeringChange(epoch=self.epoch, kind=kind, shard=shard,
                                moves=moves)
        self.steering_log.append(change)
        if self._trace is not None and kind in ("fail", "restore"):
            span = self._trace.root("failover.resteer",
                                    float(self.epoch - 1), kind=kind,
                                    shard=shard, entries=len(moves))
            span.finish(float(self.epoch))
        return change

    # -- load accounting -------------------------------------------------------
    def entry_loads(self, keys: Iterable[bytes]) -> List[int]:
        """Per-indirection-entry key counts for a stream."""
        loads = [0] * self.table_size
        entry_of = self.entry_of
        # Identical byte strings hash identically: memoise per distinct key.
        memo: Dict[bytes, int] = {}
        for key in keys:
            entry = memo.get(key)
            if entry is None:
                entry = memo[key] = entry_of(key)
            loads[entry] += 1
        return loads

    def shard_loads(self, keys: Iterable[bytes]) -> List[int]:
        """Per-shard key counts for a stream under the current table."""
        entry_loads = self.entry_loads(keys)
        loads = [0] * self.shards
        for entry, load in enumerate(entry_loads):
            loads[self.table[entry]] += load
        return loads

    def imbalance(self, keys: Iterable[bytes]) -> float:
        """``max/mean - 1`` of shard loads (0 = perfectly even)."""
        loads = self.shard_loads(keys)
        total = sum(loads)
        if not total:
            return 0.0
        mean = total / self.shards
        return max(loads) / mean - 1.0

    # -- rebalancing -----------------------------------------------------------
    def rebalance(self, keys: Iterable[bytes],
                  max_moves: int = 1024) -> RebalanceResult:
        """Greedy indirection-table rewrite to shrink the hottest shard.

        Repeatedly moves the heaviest movable entry from the currently
        most-loaded shard to the least-loaded one, accepting only moves
        that keep the receiver strictly below the donor's pre-move load
        (so the global maximum never increases, and strictly decreases
        whenever any move is possible).  Deterministic: ties break on the
        lowest entry/shard index.  Failed shards are excluded from both
        donor and receiver roles; moves update each entry's ``home``
        (rebalancing is a deliberate re-steer, unlike failover).
        """
        if max_moves < 0:
            raise ValueError(f"max_moves must be >= 0 (got {max_moves})")
        candidates_pool = self.healthy_shards
        entry_loads = self.entry_loads(keys)
        loads = [0] * self.shards
        for entry, load in enumerate(entry_loads):
            loads[self.table[entry]] += load
        result = RebalanceResult(max_load_before=max(loads),
                                 loads_before=list(loads))
        by_shard: List[List[int]] = [[] for _ in range(self.shards)]
        for entry in range(self.table_size):
            by_shard[self.table[entry]].append(entry)

        for _ in range(max_moves):
            donor = max(candidates_pool, key=lambda s: (loads[s], -s))
            receiver = min(candidates_pool, key=lambda s: (loads[s], s))
            if donor == receiver:
                break
            # Heaviest entry the receiver can absorb while staying
            # strictly under the donor's current load.
            candidates = [entry for entry in by_shard[donor]
                          if entry_loads[entry] > 0
                          and loads[receiver] + entry_loads[entry]
                          < loads[donor]]
            if not candidates:
                break
            entry = max(candidates,
                        key=lambda e: (entry_loads[e], -e))
            weight = entry_loads[entry]
            self.table[entry] = receiver
            self.home[entry] = receiver
            by_shard[donor].remove(entry)
            by_shard[receiver].append(entry)
            loads[donor] -= weight
            loads[receiver] += weight
            result.moves.append((entry, donor, receiver))

        if result.moves:
            self._log_change("rebalance", None,
                             tuple((e, f, t) for e, f, t in result.moves))
        result.max_load_after = max(loads)
        result.loads_after = list(loads)
        return result
