"""Deterministic RSS flow-hash balancer with skew-triggered rebalancing.

Models the NIC receive-side-scaling stage in front of a sharded vswitch
cluster: a stateless hash of the packed 5-tuple indexes a small
*indirection table* whose entries name shards.  Uniform traffic spreads
evenly by construction; skewed (Zipf) traffic piles hot flows onto a few
entries, and :meth:`RssBalancer.rebalance` migrates the hottest entries
off the most-loaded shard exactly the way an RSS indirection-table
rewrite does in hardware — flows move in entry-sized groups, never
individually, and the hash itself never changes.

Determinism is the point: the same ``(seed, key bytes)`` pair maps to
the same entry on every run, every process, every platform (SplitMix64
is exact 64-bit arithmetic), so shard workers can re-derive their own
key subsets from the stream definition instead of shipping key lists
across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..sim.interconnect import _mix64


@dataclass
class RebalanceResult:
    """What one rebalancing pass did."""

    moves: List[tuple] = field(default_factory=list)  # (entry, from, to)
    max_load_before: int = 0
    max_load_after: int = 0
    loads_before: List[int] = field(default_factory=list)
    loads_after: List[int] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.max_load_after < self.max_load_before


class RssBalancer:
    """RSS-style flow→shard mapping through an indirection table.

    ``table_size`` entries (hardware uses 128 or 512) are initialised
    round-robin over ``shards``; :meth:`entry_of` hashes a packed key to
    an entry, :meth:`shard_of` follows the table.  Rebalancing rewrites
    table entries only — the deterministic hash is immutable.
    """

    def __init__(self, shards: int, table_size: int = 128,
                 seed: int = 0) -> None:
        if shards < 1:
            raise ValueError(f"RssBalancer needs >= 1 shard (got {shards})")
        if table_size < shards:
            raise ValueError(
                f"indirection table of {table_size} entries cannot cover "
                f"{shards} shards; use table_size >= shards")
        self.shards = shards
        self.table_size = table_size
        self.seed = seed
        self.table: List[int] = [i % shards for i in range(table_size)]
        self._salt = _mix64(seed ^ 0x9E3779B97F4A7C15)

    # -- hashing ---------------------------------------------------------------
    def entry_of(self, key: bytes) -> int:
        """Indirection-table entry for a packed key (pure, stateless)."""
        value = self._salt
        for offset in range(0, len(key), 8):
            word = int.from_bytes(key[offset:offset + 8], "little")
            value = _mix64(value ^ word)
        return value % self.table_size

    def shard_of(self, key: bytes) -> int:
        """The shard currently serving a key."""
        return self.table[self.entry_of(key)]

    def install(self, table: Sequence[int]) -> None:
        """Adopt a previously computed indirection table (shard workers
        re-create the balancer and install the orchestrator's table)."""
        if len(table) != self.table_size:
            raise ValueError(
                f"indirection table length {len(table)} != configured "
                f"table_size {self.table_size}")
        for entry, shard in enumerate(table):
            if not 0 <= shard < self.shards:
                raise ValueError(
                    f"entry {entry} routes to shard {shard}, outside "
                    f"0..{self.shards - 1}")
        self.table = list(table)

    # -- load accounting -------------------------------------------------------
    def entry_loads(self, keys: Iterable[bytes]) -> List[int]:
        """Per-indirection-entry key counts for a stream."""
        loads = [0] * self.table_size
        entry_of = self.entry_of
        # Identical byte strings hash identically: memoise per distinct key.
        memo: Dict[bytes, int] = {}
        for key in keys:
            entry = memo.get(key)
            if entry is None:
                entry = memo[key] = entry_of(key)
            loads[entry] += 1
        return loads

    def shard_loads(self, keys: Iterable[bytes]) -> List[int]:
        """Per-shard key counts for a stream under the current table."""
        entry_loads = self.entry_loads(keys)
        loads = [0] * self.shards
        for entry, load in enumerate(entry_loads):
            loads[self.table[entry]] += load
        return loads

    def imbalance(self, keys: Iterable[bytes]) -> float:
        """``max/mean - 1`` of shard loads (0 = perfectly even)."""
        loads = self.shard_loads(keys)
        total = sum(loads)
        if not total:
            return 0.0
        mean = total / self.shards
        return max(loads) / mean - 1.0

    # -- rebalancing -----------------------------------------------------------
    def rebalance(self, keys: Iterable[bytes],
                  max_moves: int = 1024) -> RebalanceResult:
        """Greedy indirection-table rewrite to shrink the hottest shard.

        Repeatedly moves the heaviest movable entry from the currently
        most-loaded shard to the least-loaded one, accepting only moves
        that keep the receiver strictly below the donor's pre-move load
        (so the global maximum never increases, and strictly decreases
        whenever any move is possible).  Deterministic: ties break on the
        lowest entry/shard index.
        """
        entry_loads = self.entry_loads(keys)
        loads = [0] * self.shards
        for entry, load in enumerate(entry_loads):
            loads[self.table[entry]] += load
        result = RebalanceResult(max_load_before=max(loads),
                                 loads_before=list(loads))
        by_shard: List[List[int]] = [[] for _ in range(self.shards)]
        for entry in range(self.table_size):
            by_shard[self.table[entry]].append(entry)

        for _ in range(max_moves):
            donor = max(range(self.shards), key=lambda s: (loads[s], -s))
            receiver = min(range(self.shards), key=lambda s: (loads[s], s))
            if donor == receiver:
                break
            # Heaviest entry the receiver can absorb while staying
            # strictly under the donor's current load.
            candidates = [entry for entry in by_shard[donor]
                          if entry_loads[entry] > 0
                          and loads[receiver] + entry_loads[entry]
                          < loads[donor]]
            if not candidates:
                break
            entry = max(candidates,
                        key=lambda e: (entry_loads[e], -e))
            weight = entry_loads[entry]
            self.table[entry] = receiver
            by_shard[donor].remove(entry)
            by_shard[receiver].append(entry)
            loads[donor] -= weight
            loads[receiver] += weight
            result.moves.append((entry, donor, receiver))

        result.max_load_after = max(loads)
        result.loads_after = list(loads)
        return result
