"""``repro.obs`` — the observability layer.

One :class:`Observability` object per simulated machine bundles:

* :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges,
  and fixed-bucket latency histograms (p50/p95/p99 queries);
* :class:`~repro.obs.tracing.TraceRecorder` — per-query span trees
  (``query → distributor → CHA slice → cache level / DRAM → reply``) with
  cycle timestamps.

Disabling observability (``HaloSystem(observability=False)`` or
``REPRO_OBS=0``) swaps every handle for a shared null object: the
instrumented hot paths still run, but record nothing — and, by
construction, never perturb simulated time, so experiment outputs are
identical either way (a regression test holds this invariant).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from .tracing import NULL_SPAN, Span, TraceRecorder, validate_nesting
from .report import render_component_totals, render_metrics_report
from .tables import format_table

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Span",
    "TraceRecorder", "Observability", "default_enabled",
    "DEFAULT_LATENCY_BUCKETS", "NULL_COUNTER", "NULL_GAUGE",
    "NULL_HISTOGRAM", "NULL_SPAN", "validate_nesting",
    "render_metrics_report", "render_component_totals", "format_table",
]


def default_enabled() -> bool:
    """Observability defaults on; ``REPRO_OBS=0`` (or ``false``/``off``)
    turns it off process-wide."""
    return os.environ.get("REPRO_OBS", "1").lower() not in (
        "0", "false", "off", "no")


class Observability:
    """Metrics + tracing for one simulated machine."""

    def __init__(self, enabled: Optional[bool] = None,
                 trace_capacity: int = 4096) -> None:
        if enabled is None:
            enabled = default_enabled()
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.trace = TraceRecorder(enabled=enabled, capacity=trace_capacity)

    def export(self) -> Dict[str, object]:
        """The full observable state: metrics snapshot + span trees."""
        return {
            "enabled": self.enabled,
            "metrics": self.metrics.snapshot(),
            "spans": self.trace.to_dicts(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.export(), indent=indent, sort_keys=True,
                          default=float)

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
