"""The metrics registry: counters, gauges, fixed-bucket latency histograms.

Every simulator/HALO component publishes its measurements through one
:class:`MetricsRegistry` so experiments can be decomposed into *named*
metrics (``halo.accelerator.service_cycles``, ``mem.core_access.cycles``,
...) instead of ad-hoc attribute pokes.  Two publication styles coexist:

* **push** — hot paths hold :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` handles obtained from the registry and update them
  inline.  With the registry disabled the factories hand out shared
  null objects whose mutators are no-ops, so the instrumented code runs
  with no measurable overhead and, crucially, with *identical simulated
  timing* (observation never feeds back into the model).
* **pull** — components with existing stats dataclasses register a
  zero-argument callable (:meth:`MetricsRegistry.register_source`); the
  registry invokes it only at :meth:`snapshot` time, so steady-state cost
  is exactly zero.

Histograms use fixed bucket boundaries so that two histograms with the
same boundaries merge exactly (bucket-wise addition) — the property the
``tests/properties`` suite locks in.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Default bucket upper bounds (cycles).  Powers of two spanning an L1 hit
#: (~4 cycles) to far past a DRAM-resident multi-probe lookup (~64k cycles);
#: values above the last bound land in the overflow bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    float(1 << exp) for exp in range(17))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time value: either set directly or read via a callback."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def reset(self) -> None:
        self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-bucket histogram with percentile queries.

    ``bounds`` are inclusive upper bounds of each bucket; one implicit
    overflow bucket catches everything above ``bounds[-1]``.  Percentiles
    interpolate linearly inside the chosen bucket, clamped to the observed
    ``min``/``max`` so estimates never leave the data's range.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "overflow",
                 "count", "sum", "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be sorted ascending")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect.bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.bucket_counts[index] += 1

    def observe_many(self, value: float, n: int) -> None:
        """Record ``value`` ``n`` times in one update.

        The batched-replay fast path defers its per-access observations
        and flushes them grouped by distinct latency; the resulting
        histogram state (counts, buckets, min/max, sum for the integer
        latencies the hierarchy produces) is identical to ``n`` single
        :meth:`observe` calls.
        """
        if n <= 0:
            return
        self.count += n
        self.sum += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect.bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += n
        else:
            self.bucket_counts[index] += n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated value at ``fraction`` (0..1) of the distribution."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("percentile fraction must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            cumulative += bucket_count
            if cumulative >= rank:
                upper = self.bounds[index]
                lower = self.bounds[index - 1] if index else 0.0
                # Linear interpolation inside the bucket, clamped to the
                # true observed extremes.
                position = 1.0 - (cumulative - rank) / bucket_count
                estimate = lower + (upper - lower) * position
                return min(max(estimate, self.min), self.max)
        # Rank falls in the overflow bucket: the max is the best estimate.
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def merge(self, other: "Histogram") -> "Histogram":
        """Bucket-wise sum of two histograms with identical bounds."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        merged = Histogram(self.name, self.bounds)
        merged.bucket_counts = [a + b for a, b in
                                zip(self.bucket_counts, other.bucket_counts)]
        merged.overflow = self.overflow + other.overflow
        merged.count = self.count + other.count
        merged.sum = self.sum + other.sum
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def reset(self) -> None:
        self.bucket_counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def to_dict(self) -> Dict:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {f"le_{bound:g}": count
                        for bound, count in zip(self.bounds,
                                                self.bucket_counts)
                        if count},
            "overflow": self.overflow,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name}, n={self.count}, "
                f"p50={self.p50:.1f}, p99={self.p99:.1f})")


class _NullCounter(Counter):
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null")

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, n: int) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Namespace of named metrics with JSON export.

    Metric names are dotted paths (``component.subcomponent.metric``); the
    export groups on the first path segment, which the ``report`` CLI uses
    as the per-component breakdown key.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, Callable[[], Dict]] = {}

    # -- factories (get-or-create by name) ------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name, fn)
        return gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def register_source(self, name: str, fn: Callable[[], Dict]) -> None:
        """Attach a pull-style source: ``fn`` returns a flat dict of scalars
        and is invoked only when a snapshot is taken."""
        if self.enabled:
            self._sources[name] = fn

    # -- export ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """All metrics as one flat ``{dotted_name: value}`` mapping.

        Counters/gauges map to numbers, histograms to summary dicts, and
        each pull source's entries are inlined under its name prefix.
        """
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[name] = histogram.to_dict()
        for name, fn in self._sources.items():
            for key, value in fn().items():
                out[f"{name}.{key}"] = value
        return dict(sorted(out.items()))

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True,
                          default=float)

    def names(self) -> List[str]:
        return sorted(set(self._counters) | set(self._gauges)
                      | set(self._histograms) | set(self._sources))

    def reset(self) -> None:
        """Zero every push metric (pull sources reflect their components)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()
