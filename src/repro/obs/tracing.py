"""Structured per-query trace spans with cycle timestamps.

A lookup's journey — core issue → distributor → CHA-slice accelerator →
cache level / DRAM accesses → reply — is recorded as a tree of
:class:`Span` objects.  Timestamps are *simulated cycles* supplied by the
caller (``engine.now``), never wall-clock time, so traces are bit-for-bit
deterministic and the golden-trace regression suite can diff them.

Because DES processes interleave, spans never rely on an ambient
"current span" stack: the parent is threaded explicitly (each query
carries its root span, see :class:`~repro.core.query.LookupQuery`).

With tracing disabled every creation call returns the shared
:data:`NULL_SPAN`, whose mutators are no-ops — the hot path pays one
method call and nothing else.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional


class Span:
    """One timed region of a query's life, nested under a parent."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float, **attrs: Any) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs
        self.children: List["Span"] = []

    def child(self, name: str, start: float, **attrs: Any) -> "Span":
        span = Span(name, start, **attrs)
        self.children.append(span)
        return span

    def finish(self, end: float) -> "Span":
        self.end = end
        return self

    def note(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name}, [{self.start}, {self.end}], "
                f"{len(self.children)} children)")


class _NullSpan(Span):
    """Shared inert span: absorbs children and finishes silently."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", 0.0)

    def child(self, name: str, start: float, **attrs: Any) -> "Span":
        return self

    def finish(self, end: float) -> "Span":
        return self

    def note(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects root spans, keeping the most recent ``capacity`` of them."""

    def __init__(self, enabled: bool = True, capacity: int = 4096) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._roots: Deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def root(self, name: str, start: float, **attrs: Any) -> Span:
        """Open a new top-level span (one per query, typically)."""
        if not self.enabled:
            return NULL_SPAN
        if len(self._roots) == self._roots.maxlen:
            self.dropped += 1
        span = Span(name, start, **attrs)
        self._roots.append(span)
        return span

    @property
    def roots(self) -> List[Span]:
        return list(self._roots)

    def __len__(self) -> int:
        return len(self._roots)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self._roots]

    def clear(self) -> None:
        self._roots.clear()
        self.dropped = 0


def validate_nesting(span: Span) -> List[str]:
    """Check the span-tree timing invariants; returns human-readable
    violations (empty list = well formed).

    * every span has finished (``end`` is set) and ``end >= start``;
    * every child's ``[start, end]`` lies within its parent's.
    """
    problems: List[str] = []

    def visit(node: Span) -> None:
        if node.end is None:
            problems.append(f"span {node.name!r} never finished")
            return
        if node.end < node.start:
            problems.append(
                f"span {node.name!r} ends ({node.end}) before it starts "
                f"({node.start})")
        for child in node.children:
            visit(child)
            if child.end is None:
                continue
            if child.start < node.start or child.end > node.end:
                problems.append(
                    f"child {child.name!r} [{child.start}, {child.end}] "
                    f"escapes parent {node.name!r} "
                    f"[{node.start}, {node.end}]")

    visit(span)
    return problems
