"""Aligned ASCII table rendering — the one table formatter in the repo.

Lives in the bottom (observability) layer so both the metrics report and
the analysis/benchmark layer can use it without an upward import
(``repro.obs`` must not depend on ``repro.analysis``; see
``scripts/check_layering.py``).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(value) for value in row]
                                 for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)
