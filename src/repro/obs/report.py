"""Render a metrics snapshot as a per-component breakdown table.

Used by ``python -m repro report`` and by :meth:`HaloSystem.report`.
Metric names are dotted (``component.sub.metric``); rows are grouped by
their first segment so related metrics read as one block.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .tables import format_table


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.2f}"
    return str(value)


def _rows(snapshot: Dict[str, object]) -> List[Tuple[str, ...]]:
    rows: List[Tuple[str, ...]] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        component, _, metric = name.partition(".")
        if isinstance(value, dict):
            # Histogram summary.
            if not value.get("count"):
                continue
            rows.append((component, metric,
                         _fmt(value["count"]),
                         _fmt(value.get("mean", 0.0)),
                         _fmt(value.get("p50", 0.0)),
                         _fmt(value.get("p95", 0.0)),
                         _fmt(value.get("p99", 0.0)),
                         _fmt(value.get("max", 0.0))))
        else:
            rows.append((component, metric, _fmt(value), "", "", "", "", ""))
    return rows


def render_metrics_report(snapshot: Dict[str, object],
                          title: str = "per-component metrics") -> str:
    """An aligned table over every non-empty metric in ``snapshot``."""
    rows = _rows(snapshot)
    if not rows:
        return f"{title}: no metrics recorded (observability disabled?)"
    return format_table(
        ["component", "metric", "count/value", "mean", "p50", "p95", "p99",
         "max"],
        rows, title=title)


def render_component_totals(snapshot: Dict[str, object]) -> str:
    """One line per top-level component: how many metrics it published."""
    per_component: Dict[str, int] = {}
    for name, value in snapshot.items():
        if isinstance(value, dict) and not value.get("count"):
            continue
        component = name.partition(".")[0]
        per_component[component] = per_component.get(component, 0) + 1
    lines = [f"  {component}: {count} metrics"
             for component, count in sorted(per_component.items())]
    return "\n".join(["components:"] + lines)
