"""Declarative fault schedules.

A :class:`FaultPlan` is data, not behaviour: an immutable set of
:class:`FaultWindow` entries plus one seed.  The
:class:`~repro.faults.injector.FaultInjector` interprets it against a live
system; keeping the two apart means a plan can be printed, serialised into
experiment parameters, and compared across runs.

Windows support *duty cycling*: a window with ``period`` fires for the
first ``duty`` fraction of every period inside ``[start, end)``.  The
:meth:`FaultPlan.degradation` preset leans on this to guarantee monotone
coverage — raising ``intensity`` only widens each burst, so every cycle
faulted at intensity *x* is also faulted at every intensity above *x*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

_MASK64 = 0xFFFFFFFFFFFFFFFF


class SplitMix64:
    """A tiny, dependency-free deterministic RNG (SplitMix64).

    The fault subsystem cannot use ``random``/``numpy`` global state — fault
    decisions must replay bit-identically and must not perturb any other
    consumer's stream.  SplitMix64 is the same mixer the interconnect uses
    for slice hashing; here it runs as a sequential generator.
    """

    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = seed & _MASK64

    def next_u64(self) -> int:
        self.state = (self.state + 0x9E3779B97F4A7C15) & _MASK64
        value = self.state
        value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
        return value ^ (value >> 31)

    def uniform(self) -> float:
        """A float in [0, 1) with 53 random bits."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def randint(self, low: int, high: int) -> int:
        """An integer in [low, high] (inclusive)."""
        if high < low:
            raise ValueError("empty randint range")
        return low + self.next_u64() % (high - low + 1)

    def fork(self, tag: int) -> "SplitMix64":
        """An independent child stream keyed by ``tag`` (order-free)."""
        child = SplitMix64((self.state ^ (tag * 0x9E3779B97F4A7C15)) & _MASK64)
        child.next_u64()
        return child


class FaultKind(enum.Enum):
    """The fault classes the injector knows how to realise."""

    ACCEL_STALL = "accel_stall"          # extra service delay per query
    ACCEL_OUTAGE = "accel_outage"        # slice answers nothing until window ends
    QUEUE_SATURATION = "queue_saturation"  # phantom queries occupy scoreboard slots
    LOCK_HOLD = "lock_hold"              # lock bit stuck on hot lines (livelock)
    DRAM_SPIKE = "dram_spike"            # extra DRAM latency per access
    NOC_DROP = "noc_drop"                # message lost, retransmitted
    NOC_DUPLICATE = "noc_duplicate"      # message delivered twice


@dataclass(frozen=True)
class FaultWindow:
    """One fault, active over ``[start, end)`` simulated cycles.

    ``slice_id`` targets one LLC slice/CHA (None = machine-wide).
    ``magnitude`` is extra cycles (stalls/spikes) or slot count
    (queue saturation).  ``probability`` gates per-event faults (DRAM
    spikes, NoC drops/duplicates); scheduled faults ignore it.
    ``period``/``duty`` duty-cycle the window; ``lines`` names the locked
    addresses for :attr:`FaultKind.LOCK_HOLD`.
    """

    kind: FaultKind
    start: float
    end: float
    slice_id: Optional[int] = None
    magnitude: float = 0.0
    probability: float = 1.0
    period: Optional[float] = None
    duty: float = 1.0
    lines: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty fault window [{self.start}, {self.end})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")
        if self.period is not None and self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError(f"duty {self.duty} outside [0, 1]")

    def covers_slice(self, slice_id: int) -> bool:
        return self.slice_id is None or self.slice_id == slice_id

    def active(self, now: float) -> bool:
        """Is the fault live at cycle ``now``?"""
        if not self.start <= now < self.end:
            return False
        if self.period is None:
            return True
        return (now - self.start) % self.period < self.duty * self.period

    def remaining(self, now: float) -> float:
        """Cycles until the current active burst switches off (0 if idle)."""
        if not self.active(now):
            return 0.0
        if self.period is None:
            return self.end - now
        elapsed = now - self.start
        burst_end = (self.start
                     + (elapsed // self.period) * self.period
                     + self.duty * self.period)
        return min(burst_end, self.end) - now


@dataclass(frozen=True)
class FaultPlan:
    """An immutable fault schedule + the seed driving probabilistic faults."""

    windows: Tuple[FaultWindow, ...] = ()
    seed: int = 0xFA17

    def __post_init__(self) -> None:
        # Accept any iterable of windows but store a tuple (hashable, frozen).
        if not isinstance(self.windows, tuple):
            object.__setattr__(self, "windows", tuple(self.windows))

    def __bool__(self) -> bool:
        return bool(self.windows)

    def rng(self) -> SplitMix64:
        return SplitMix64(self.seed)

    def of_kind(self, *kinds: FaultKind) -> Tuple[FaultWindow, ...]:
        return tuple(w for w in self.windows if w.kind in kinds)

    def active(self, kind: FaultKind, now: float,
               slice_id: Optional[int] = None) -> Iterator[FaultWindow]:
        """Windows of ``kind`` live at ``now`` (optionally slice-filtered)."""
        for window in self.windows:
            if window.kind is not kind or not window.active(now):
                continue
            if slice_id is not None and not window.covers_slice(slice_id):
                continue
            yield window

    def describe(self) -> str:
        if not self.windows:
            return f"FaultPlan(empty, seed={self.seed:#x})"
        lines = [f"FaultPlan(seed={self.seed:#x}, "
                 f"{len(self.windows)} window(s)):"]
        for window in self.windows:
            where = ("all slices" if window.slice_id is None
                     else f"slice {window.slice_id}")
            duty = ""
            if window.period is not None:
                duty = (f", duty {window.duty:.0%} of "
                        f"{window.period:.0f}-cycle periods")
            lines.append(
                f"  {window.kind.value:>16} [{window.start:>8.0f}, "
                f"{window.end:>8.0f}) {where}, magnitude "
                f"{window.magnitude:g}, p={window.probability:g}{duty}")
        return "\n".join(lines)

    # -- presets ----------------------------------------------------------
    @classmethod
    def slice_outage(cls, slice_id: int, start: float, end: float,
                     seed: int = 0xFA17) -> "FaultPlan":
        """One slice's accelerator goes dark over ``[start, end)``.

        The canonical degraded-hardware scenario: queries admitted on the
        slice stall until the window closes, so its busy bit rises and
        bounded-wait clients time out onto their fallback path.
        """
        return cls(windows=(FaultWindow(
            kind=FaultKind.ACCEL_OUTAGE, start=start, end=end,
            slice_id=slice_id), ), seed=seed)

    @classmethod
    def degradation(cls, intensity: float, seed: int = 0xFA17,
                    start: float = 0.0, end: float = 10_000_000.0,
                    period: float = 4096.0,
                    stall_cycles: float = 400.0,
                    dram_extra: float = 300.0,
                    noc_drop_probability: float = 0.05) -> "FaultPlan":
        """A machine-wide fault mix whose coverage scales with ``intensity``.

        ``intensity`` in [0, 1]: 0 → an empty plan (healthy machine); 1 →
        accelerator stalls and DRAM spikes active continuously plus NoC
        drops at full probability.  Coverage is duty-cycled so it nests:
        every faulted cycle at intensity *x* is faulted at *y > x* too,
        and magnitudes scale linearly — which makes sustained throughput
        monotone non-increasing in intensity by construction (the
        ``degradation_sweep`` experiment asserts this).
        """
        if not 0.0 <= intensity <= 1.0:
            raise ValueError(f"intensity {intensity} outside [0, 1]")
        if intensity == 0.0:
            return cls(windows=(), seed=seed)
        windows = (
            FaultWindow(kind=FaultKind.ACCEL_STALL, start=start, end=end,
                        magnitude=stall_cycles * intensity,
                        period=period, duty=intensity),
            FaultWindow(kind=FaultKind.DRAM_SPIKE, start=start, end=end,
                        magnitude=dram_extra * intensity,
                        period=period, duty=intensity),
            FaultWindow(kind=FaultKind.NOC_DROP, start=start, end=end,
                        probability=noc_drop_probability * intensity),
        )
        return cls(windows=windows, seed=seed)
