"""``repro.faults`` — deterministic fault injection for the DES stack.

HALO's evaluation (paper §6) assumes healthy hardware: accelerators always
answer, lock bits always clear, DRAM stays near its nominal latency.  This
package asks the production question — *what happens when they don't* —
without giving up the repo's core property that every run is bit-identical
for a given seed.

Three pieces:

* :class:`~repro.faults.plan.FaultPlan` — a declarative, immutable schedule
  of :class:`~repro.faults.plan.FaultWindow`\\ s (accelerator stalls and
  outages, CHA queue saturation, lock-bit holds, DRAM latency spikes,
  dropped/duplicated NoC messages), plus a seed for the probabilistic
  faults;
* :class:`~repro.faults.injector.FaultInjector` — installs the plan onto a
  live :class:`~repro.core.halo_system.HaloSystem` through the fault seams
  (:meth:`Engine.add_fault_hook`, ``Dram.fault_hook``,
  ``Interconnect.fault_hook``, ``HardwareLockManager.hold``), and exports
  ``faults.*`` counters through ``repro.obs``;
* :class:`~repro.faults.shard_plan.ShardFaultPlan` — the cluster-level
  analogue: which *shard* dies/flaps/straggles on which attempt, realised
  by the supervised pool's worker processes (or synthesised by
  ``run_cluster``'s inline dispatch) so ``cluster_chaos`` can kill shards
  deterministically and exercise RSS failover.

Determinism: all randomness flows through a :class:`SplitMix64` stream
seeded from the plan, and the DES engine is single-threaded with a total
event order — so the same plan + workload replays the exact same fault
decisions, timelines, and counters.  An installed plan with *no* windows
injects nothing and leaves cycle totals bit-identical to an uninstrumented
run (pinned by ``tests/faults``).

Layering: ``faults`` sits above ``exec`` (it drives whole systems) and only
``cluster``/``runner``/``analysis``/root modules may import it — enforced
by ``scripts/check_layering.py``.
"""

from __future__ import annotations

from .plan import FaultKind, FaultPlan, FaultWindow, SplitMix64
from .injector import FaultInjector, FaultStats
from .shard_plan import (
    ShardFaultDecision,
    ShardFaultKind,
    ShardFaultPlan,
    ShardFaultWindow,
)

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultWindow",
    "SplitMix64",
    "FaultInjector",
    "FaultStats",
    "ShardFaultDecision",
    "ShardFaultKind",
    "ShardFaultPlan",
    "ShardFaultWindow",
]
