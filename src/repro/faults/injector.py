"""Realising a :class:`~repro.faults.plan.FaultPlan` on a live system.

The injector touches only the sanctioned fault seams:

* ``Engine.add_fault_hook("accelerator.serve", ...)`` — a generator gate
  every accelerator query passes right after winning a scoreboard slot.
  Stalls and outages happen *inside* the slot, so a faulted slice backs up
  exactly like real head-of-line blocking: its busy bit rises and the
  query distributor holds traffic.
* ``Dram.fault_hook`` / ``Interconnect.fault_hook`` — pure per-access
  callbacks adding latency (spikes, retransmits after drops) or phantom
  traffic (duplicates).  They schedule no engine events, so an installed
  plan never extends the engine's drain time by itself.
* ``HardwareLockManager.hold`` and ``Scoreboard.admit`` — scheduled
  processes realise lock-bit holds and queue saturation; these *do* place
  calendar events at window boundaries (documented in docs/MODELING.md §8).

Everything observable lands in :class:`FaultStats`, exported through the
metrics registry as the ``faults.*`` pull source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from .plan import FaultKind, FaultPlan, FaultWindow

#: Seam name on the engine fault-hook bus for the accelerator gate.
ACCEL_SEAM = "accelerator.serve"


@dataclass
class FaultStats:
    """Everything the injector did, as flat scalars."""

    accel_stalls: int = 0
    accel_stall_cycles: float = 0.0
    outage_delays: int = 0
    outage_cycles: float = 0.0
    dram_spikes: int = 0
    dram_extra_cycles: float = 0.0
    noc_drops: int = 0
    noc_duplicates: int = 0
    lock_holds: int = 0
    queue_slots_held: int = 0

    @property
    def injections(self) -> int:
        return (self.accel_stalls + self.outage_delays + self.dram_spikes
                + self.noc_drops + self.noc_duplicates + self.lock_holds
                + self.queue_slots_held)

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        return {
            "accel_stalls": self.accel_stalls,
            "accel_stall_cycles": self.accel_stall_cycles,
            "outage_delays": self.outage_delays,
            "outage_cycles": self.outage_cycles,
            "dram_spikes": self.dram_spikes,
            "dram_extra_cycles": self.dram_extra_cycles,
            "noc_drops": self.noc_drops,
            "noc_duplicates": self.noc_duplicates,
            "lock_holds": self.lock_holds,
            "queue_slots_held": self.queue_slots_held,
            "injections": self.injections,
        }


class FaultInjector:
    """Binds one :class:`FaultPlan` to one ``HaloSystem``.

    Usage::

        injector = FaultInjector(system, plan)
        injector.install()
        ...run workloads...
        injector.uninstall()   # optional; safe to leave installed

    Install before running: lock-hold and queue-saturation windows are
    realised as engine processes registered at install time.
    """

    def __init__(self, system, plan: FaultPlan) -> None:
        self.system = system
        self.engine = system.engine
        self.plan = plan
        self.stats = FaultStats()
        self._rng = plan.rng()
        self.installed = False

    # -- lifecycle ---------------------------------------------------------
    def install(self) -> "FaultInjector":
        if self.installed:
            return self
        self.engine.add_fault_hook(ACCEL_SEAM, self._accel_gate)
        hierarchy = self.system.hierarchy
        hierarchy.dram.fault_hook = self._dram_hook
        hierarchy.interconnect.fault_hook = self._noc_hook
        self.system.obs.metrics.register_source("faults", self._source)
        for window in self.plan.of_kind(FaultKind.LOCK_HOLD):
            self.engine.process(self._lock_hold(window), name="fault.lock_hold")
        for window in self.plan.of_kind(FaultKind.QUEUE_SATURATION):
            for accelerator in self.system.accelerators:
                if window.covers_slice(accelerator.slice_id):
                    self.engine.process(
                        self._queue_saturation(window, accelerator),
                        name=f"fault.queue_sat.s{accelerator.slice_id}")
        self.installed = True
        return self

    def uninstall(self) -> None:
        """Detach the pure hooks (scheduled window processes, if any, run
        out on their own as the engine drains)."""
        if not self.installed:
            return
        self.engine.remove_fault_hook(ACCEL_SEAM)
        hierarchy = self.system.hierarchy
        hierarchy.dram.fault_hook = None
        hierarchy.interconnect.fault_hook = None
        self.installed = False

    def _source(self) -> dict:
        if not self.stats.injections:
            return {}
        return self.stats.as_dict()

    # -- pure hooks --------------------------------------------------------
    def _accel_gate(self, accelerator) -> Generator:
        """Gate one admitted query: sleep out outages, then pay stalls.

        With no active window this yields nothing — zero events, zero
        cycles — which is what the zero-fault parity test pins.
        """
        engine = self.engine
        slice_id = accelerator.slice_id
        while True:
            outage = next(self.plan.active(FaultKind.ACCEL_OUTAGE,
                                           engine.now, slice_id), None)
            if outage is None:
                break
            remaining = outage.remaining(engine.now)
            self.stats.outage_delays += 1
            self.stats.outage_cycles += remaining
            yield engine.timeout(remaining)
        for window in self.plan.active(FaultKind.ACCEL_STALL,
                                       engine.now, slice_id):
            if (window.probability < 1.0
                    and self._rng.uniform() >= window.probability):
                continue
            self.stats.accel_stalls += 1
            self.stats.accel_stall_cycles += window.magnitude
            yield engine.timeout(window.magnitude)

    def _dram_hook(self, write: bool) -> float:
        extra = 0.0
        for window in self.plan.active(FaultKind.DRAM_SPIKE, self.engine.now):
            if (window.probability < 1.0
                    and self._rng.uniform() >= window.probability):
                continue
            extra += window.magnitude
        if extra:
            self.stats.dram_spikes += 1
            self.stats.dram_extra_cycles += extra
        return extra

    def _noc_hook(self, src: int, dst: int, hops: int) -> float:
        interconnect = self.system.hierarchy.interconnect
        extra = 0.0
        now = self.engine.now
        for window in self.plan.active(FaultKind.NOC_DROP, now):
            if self._rng.uniform() < window.probability:
                # The message is lost; the retransmit pays the path again.
                self.stats.noc_drops += 1
                extra += hops * interconnect.latency.hop + window.magnitude
        for window in self.plan.active(FaultKind.NOC_DUPLICATE, now):
            if self._rng.uniform() < window.probability:
                # A spurious copy rides the ring: phantom traffic, no delay
                # for the original.
                self.stats.noc_duplicates += 1
                interconnect.stats.messages += 1
                interconnect.stats.total_hops += hops
        return extra

    # -- scheduled window processes ---------------------------------------
    def _next_burst(self, window: FaultWindow, now: float) -> float:
        """First cycle >= now at which the window is active (end if never)."""
        if now < window.start:
            return window.start
        if window.period is None:
            return now if now < window.end else window.end
        elapsed = now - window.start
        periods = int(elapsed // window.period)
        if window.active(now):
            return now
        return min(window.start + (periods + 1) * window.period, window.end)

    def _lock_hold(self, window: FaultWindow) -> Generator:
        """Pin the window's lines' lock bits for each active burst."""
        engine = self.engine
        manager = self.system.lock_manager
        while engine.now < window.end:
            burst = self._next_burst(window, engine.now)
            if burst >= window.end:
                break
            if burst > engine.now:
                yield engine.timeout(burst - engine.now)
            held: List[int] = [addr for addr in window.lines
                               if manager.hold(addr)]
            self.stats.lock_holds += len(held)
            remaining = window.remaining(engine.now)
            if remaining > 0:
                yield engine.timeout(remaining)
            for addr in held:
                manager.release_hold(addr)

    def _queue_saturation(self, window: FaultWindow,
                          accelerator) -> Generator:
        """Occupy scoreboard slots with phantom queries for each burst."""
        engine = self.engine
        scoreboard = accelerator.scoreboard
        slots = int(window.magnitude) if window.magnitude else scoreboard.entries
        slots = max(1, min(slots, scoreboard.entries))
        while engine.now < window.end:
            burst = self._next_burst(window, engine.now)
            if burst >= window.end:
                break
            if burst > engine.now:
                yield engine.timeout(burst - engine.now)
            granted = 0
            for _ in range(slots):
                yield scoreboard.admit()
                granted += 1
            self.stats.queue_slots_held += granted
            remaining = window.remaining(engine.now)
            if remaining > 0:
                yield engine.timeout(remaining)
            for _ in range(granted):
                scoreboard.complete()
