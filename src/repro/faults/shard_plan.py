"""Cluster-level fault schedules: which shard fails, on which attempt.

:class:`~repro.faults.plan.FaultPlan` speaks the language of one socket —
cycles, slices, DRAM.  The ``repro.cluster`` layer needs a coarser
vocabulary: *shard 3 is dead*, *shard 1 crashes once and recovers on
retry*, *shard 5 runs slow*.  :class:`ShardFaultPlan` is that schedule —
pure data, interpreted by the supervised pool's worker processes (a kill
decision exits the child, which the pool observes as a crash) and, for
inline dispatch, synthesised by ``run_cluster`` itself so both dispatch
paths realise bit-identical fault histories for the same seed.

Determinism and monotonicity are load-bearing:

* every probabilistic decision is a single :class:`SplitMix64` draw forked
  by ``(window, shard)`` — independent of the rate being tested — so the
  set of killed shards at rate *x* is a subset of the set at *y > x*
  (``cluster_chaos`` asserts lost-flow and p99 monotonicity on top of
  this);
* windows may additionally duty-cycle over the *shard-index* axis
  (``period``/``duty``), giving structural coverage that needs no RNG at
  all;
* ``protected`` shards are never killed, so a plan can guarantee at least
  one survivor for failover to re-steer onto.

Public contract: :class:`ShardFaultKind`, :class:`ShardFaultWindow`,
:class:`ShardFaultDecision`, and :class:`ShardFaultPlan` (including
``decide``'s pure-function determinism, the subset-nesting guarantee
described above, and the ``to_params``/``from_params`` JSON round-trip)
are stable API.  The presets (:meth:`ShardFaultPlan.kills`,
:meth:`ShardFaultPlan.flaky`, :meth:`ShardFaultPlan.chaos`) may gain
keyword knobs but keep their semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .plan import SplitMix64


class ShardFaultKind(enum.Enum):
    """The shard-level fault classes the cluster knows how to realise."""

    KILL = "kill"            # shard dies on every attempt (permanent loss)
    FLAP = "flap"            # shard dies on early attempts, then recovers
    STRAGGLER = "straggler"  # shard serves, but every lookup costs extra cycles


@dataclass(frozen=True)
class ShardFaultWindow:
    """One fault affecting a (deterministically chosen) set of shards.

    Targeting composes three filters, all of which must pass:

    * ``shards`` — explicit allow-list (empty tuple = all shards);
    * ``period``/``duty`` — duty cycle over the shard-index axis: with
      ``period=4, duty=0.5`` only shards ``0, 1 (mod 4)`` are eligible;
    * ``rate`` — probabilistic gate: one uniform draw per (window, shard),
      affected iff ``draw < rate``.  The draw does not depend on ``rate``,
      so raising it only ever *adds* shards.

    ``flap_attempts`` bounds how many attempts a :attr:`ShardFaultKind.FLAP`
    window kills before the shard recovers; ``magnitude`` is the extra
    simulated cycles per lookup for :attr:`ShardFaultKind.STRAGGLER`.
    """

    kind: ShardFaultKind
    rate: float = 1.0
    shards: Tuple[int, ...] = ()
    period: Optional[int] = None
    duty: float = 1.0
    flap_attempts: int = 1
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate {self.rate} outside [0, 1]")
        if self.period is not None and self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError(f"duty {self.duty} outside [0, 1]")
        if self.flap_attempts < 1:
            raise ValueError("flap_attempts must be >= 1")
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")
        if not isinstance(self.shards, tuple):
            object.__setattr__(self, "shards", tuple(self.shards))

    def covers(self, shard: int) -> bool:
        """Do the structural filters (allow-list, duty cycle) admit
        ``shard``?  The probabilistic ``rate`` gate is the plan's job —
        it owns the RNG."""
        if self.shards and shard not in self.shards:
            return False
        if self.period is not None:
            return (shard % self.period) < self.duty * self.period
        return True

    def kills_attempt(self, attempt: int) -> bool:
        """Does this window kill the given (1-based) attempt?"""
        if self.kind is ShardFaultKind.KILL:
            return True
        if self.kind is ShardFaultKind.FLAP:
            return attempt <= self.flap_attempts
        return False


@dataclass(frozen=True)
class ShardFaultDecision:
    """The realised outcome of :meth:`ShardFaultPlan.decide` for one
    (shard, attempt): die now, and/or serve slower."""

    kill: bool = False
    straggle_cycles: float = 0.0
    kinds: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.kill or self.straggle_cycles > 0


@dataclass(frozen=True)
class ShardFaultPlan:
    """An immutable shard-fault schedule + seed.

    ``decide(shard, attempt)`` is a pure function of (plan, shard,
    attempt): the supervised pool's children and ``run_cluster``'s inline
    dispatch both call it and must reach identical conclusions.
    """

    windows: Tuple[ShardFaultWindow, ...] = ()
    seed: int = 0x5AD0
    protected: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not isinstance(self.windows, tuple):
            object.__setattr__(self, "windows", tuple(self.windows))
        if not isinstance(self.protected, tuple):
            object.__setattr__(self, "protected", tuple(self.protected))

    def __bool__(self) -> bool:
        return bool(self.windows)

    # -- the decision procedure -------------------------------------------
    def _affects(self, index: int, window: ShardFaultWindow,
                 shard: int) -> bool:
        if not window.covers(shard):
            return False
        if window.rate >= 1.0:
            return True
        # One draw per (window, shard), forked so evaluation order is
        # irrelevant and the draw is independent of ``rate`` (nesting).
        draw = SplitMix64(self.seed).fork(index + 1).fork(shard + 1).uniform()
        return draw < window.rate

    def decide(self, shard: int, attempt: int) -> ShardFaultDecision:
        """What happens to ``shard`` on (1-based) ``attempt``?

        Kill decisions are suppressed for ``protected`` shards;
        straggler slowdowns still apply to them (a slow survivor is the
        interesting case).  Multiple straggler windows stack additively.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        kill = False
        straggle = 0.0
        kinds = []
        for index, window in enumerate(self.windows):
            if not self._affects(index, window, shard):
                continue
            if window.kills_attempt(attempt):
                if shard not in self.protected:
                    kill = True
                    kinds.append(window.kind.value)
            elif window.kind is ShardFaultKind.STRAGGLER:
                straggle += window.magnitude
                kinds.append(window.kind.value)
        return ShardFaultDecision(kill=kill, straggle_cycles=straggle,
                                  kinds=tuple(kinds))

    def doomed_shards(self, shards: int, attempts: int) -> Tuple[int, ...]:
        """Shards that die on *every* attempt up to ``attempts`` — the
        ones failover must re-steer around."""
        doomed = []
        for shard in range(shards):
            if all(self.decide(shard, a).kill
                   for a in range(1, attempts + 1)):
                doomed.append(shard)
        return tuple(doomed)

    # -- serialisation -----------------------------------------------------
    def to_params(self) -> Dict[str, Any]:
        """A JSON-safe dict (experiment params, cross-process shard
        params).  Round-trips exactly through :meth:`from_params`."""
        return {
            "seed": self.seed,
            "protected": list(self.protected),
            "windows": [
                {
                    "kind": w.kind.value,
                    "rate": w.rate,
                    "shards": list(w.shards),
                    "period": w.period,
                    "duty": w.duty,
                    "flap_attempts": w.flap_attempts,
                    "magnitude": w.magnitude,
                }
                for w in self.windows
            ],
        }

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "ShardFaultPlan":
        """Inverse of :meth:`to_params`; validates through the dataclass
        constructors, so a corrupted dict raises rather than mis-steers."""
        windows = tuple(
            ShardFaultWindow(
                kind=ShardFaultKind(w["kind"]),
                rate=w.get("rate", 1.0),
                shards=tuple(w.get("shards", ())),
                period=w.get("period"),
                duty=w.get("duty", 1.0),
                flap_attempts=w.get("flap_attempts", 1),
                magnitude=w.get("magnitude", 0.0),
            )
            for w in params.get("windows", ())
        )
        return cls(windows=windows, seed=params.get("seed", 0x5AD0),
                   protected=tuple(params.get("protected", (0,))))

    def describe(self) -> str:
        if not self.windows:
            return f"ShardFaultPlan(empty, seed={self.seed:#x})"
        lines = [f"ShardFaultPlan(seed={self.seed:#x}, "
                 f"protected={list(self.protected)}, "
                 f"{len(self.windows)} window(s)):"]
        for window in self.windows:
            where = ("all shards" if not window.shards
                     else f"shards {list(window.shards)}")
            duty = ""
            if window.period is not None:
                duty = (f", duty {window.duty:.0%} of "
                        f"{window.period}-shard periods")
            lines.append(
                f"  {window.kind.value:>9} rate={window.rate:g} {where}"
                f"{duty}, flap_attempts={window.flap_attempts}, "
                f"magnitude={window.magnitude:g}")
        return "\n".join(lines)

    # -- presets -----------------------------------------------------------
    @classmethod
    def kills(cls, rate: float, seed: int = 0x5AD0,
              protected: Tuple[int, ...] = (0,)) -> "ShardFaultPlan":
        """Permanent shard deaths at ``rate``: the canonical failover
        scenario.  ``rate=0`` is an empty plan (healthy cluster), and the
        killed set nests as ``rate`` rises (same seed)."""
        if rate == 0.0:
            return cls(windows=(), seed=seed, protected=protected)
        return cls(windows=(ShardFaultWindow(
            kind=ShardFaultKind.KILL, rate=rate), ),
            seed=seed, protected=protected)

    @classmethod
    def flaky(cls, rate: float, attempts: int = 1,
              seed: int = 0x5AD0) -> "ShardFaultPlan":
        """Transient crashes: affected shards die on their first
        ``attempts`` tries, then recover — retry budget permitting, the
        supervised pool absorbs these without failover."""
        if rate == 0.0:
            return cls(windows=(), seed=seed, protected=())
        return cls(windows=(ShardFaultWindow(
            kind=ShardFaultKind.FLAP, rate=rate,
            flap_attempts=attempts), ), seed=seed, protected=())

    @classmethod
    def chaos(cls, kill_rate: float, seed: int = 0x5AD0,
              protected: Tuple[int, ...] = (0,),
              straggle_cycles: float = 48.0) -> "ShardFaultPlan":
        """The ``cluster_chaos`` mix: permanent kills at ``kill_rate``,
        first-attempt flaps at half that, and stragglers (fixed extra
        per-lookup cycles) at the same rate as the kills.  Window order is
        fixed, so the affected sets nest monotonically in ``kill_rate``.
        """
        if kill_rate == 0.0:
            return cls(windows=(), seed=seed, protected=protected)
        windows = (
            ShardFaultWindow(kind=ShardFaultKind.KILL, rate=kill_rate),
            ShardFaultWindow(kind=ShardFaultKind.FLAP,
                             rate=kill_rate / 2.0, flap_attempts=1),
            ShardFaultWindow(kind=ShardFaultKind.STRAGGLER, rate=kill_rate,
                             magnitude=straggle_cycles),
        )
        return cls(windows=windows, seed=seed, protected=protected)
