"""Power and area models for the hardware comparators (paper Table 4).

The anchor points reproduce the paper's Table 4 exactly (McPAT/CACTI-derived
for a 22 nm process); other capacities interpolate in log-log space, which
matches the Agrawal–Sherwood TCAM model's power-law scaling.

=========  ===========  ============  ==================
Capacity   Area / tiles Static / mW   Dynamic / (nJ/query)
=========  ===========  ============  ==================
1 KB       0.001        71.1          0.04
10 KB      0.066        235.3         0.37
100 KB     1.044        3850.5        13.84
1 MB       9.343        26733.1       84.82
HALO       0.012        97.2          1.76
=========  ===========  ============  ==================
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..core.power import PowerEnvelope, halo_envelope
from .sram_tcam import AREA_SAVING, POWER_SAVING

KB = 1024

#: capacity_bytes -> (area_tiles, static_mW, dynamic_nJ_per_query)
TCAM_TABLE4: Dict[int, Tuple[float, float, float]] = {
    1 * KB: (0.001, 71.1, 0.04),
    10 * KB: (0.066, 235.3, 0.37),
    100 * KB: (1.044, 3850.5, 13.84),
    1024 * KB: (9.343, 26733.1, 84.82),
}

#: Bytes per 5-tuple rule — "1MB TCAM ... about 100K 5-tuple rules" (§6.4).
BYTES_PER_5TUPLE_RULE = 1024 * KB / 100_000


def _loglog_interp(capacity: int, column: int) -> float:
    """Log-log interpolation/extrapolation through the Table 4 anchors."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    points: List[Tuple[float, float]] = sorted(
        (math.log(size), math.log(values[column]))
        for size, values in TCAM_TABLE4.items())
    x = math.log(capacity)
    if x <= points[0][0]:
        (x0, y0), (x1, y1) = points[0], points[1]
    elif x >= points[-1][0]:
        (x0, y0), (x1, y1) = points[-2], points[-1]
    else:
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            if x0 <= x <= x1:
                break
    slope = (y1 - y0) / (x1 - x0)
    return math.exp(y0 + slope * (x - x0))


def tcam_envelope(capacity_bytes: int) -> PowerEnvelope:
    """Power/area for a native TCAM of the given capacity."""
    exact = TCAM_TABLE4.get(capacity_bytes)
    if exact is not None:
        area, static, dynamic = exact
    else:
        area = _loglog_interp(capacity_bytes, 0)
        static = _loglog_interp(capacity_bytes, 1)
        dynamic = _loglog_interp(capacity_bytes, 2)
    return PowerEnvelope(
        name=f"TCAM {capacity_bytes // KB}KB",
        static_milliwatts=static,
        dynamic_nanojoule_per_query=dynamic,
        area_tiles=area,
    )


def sram_tcam_envelope(capacity_bytes: int) -> PowerEnvelope:
    """SRAM-TCAM: ~45% less power, ~57% less area than native TCAM."""
    base = tcam_envelope(capacity_bytes)
    return PowerEnvelope(
        name=f"SRAM-TCAM {capacity_bytes // KB}KB",
        static_milliwatts=base.static_milliwatts * (1 - POWER_SAVING),
        dynamic_nanojoule_per_query=(base.dynamic_nanojoule_per_query
                                     * (1 - POWER_SAVING)),
        area_tiles=base.area_tiles * (1 - AREA_SAVING),
    )


def capacity_for_rules(num_5tuple_rules: int) -> int:
    """TCAM bytes needed to hold the given number of 5-tuple rules."""
    return int(math.ceil(num_5tuple_rules * BYTES_PER_5TUPLE_RULE))


def halo_vs_tcam_efficiency(capacity_bytes: int,
                            queries_per_second: float = float("inf"),
                            accelerators: int = 1) -> float:
    """Energy-per-query ratio TCAM/HALO (>1 means HALO more efficient).

    At saturating query rates static power amortises away and the ratio is
    purely dynamic: for 1 MB TCAM vs one HALO accelerator it is
    84.82 / 1.76 = 48.2 — the paper's headline "up to 48.2× more
    energy-efficient".  At finite query rates TCAM's enormous static power
    makes the gap larger still.
    """
    halo = halo_envelope(accelerators)
    tcam = tcam_envelope(capacity_bytes)
    return (tcam.energy_per_query_nj(queries_per_second)
            / halo.energy_per_query_nj(queries_per_second))
