"""Ternary content-addressable memory (TCAM) model.

The paper's upper-bound comparator: a TCAM searches *all* stored ternary
rules in parallel and answers in a few clock cycles, independent of rule
count — but updates are expensive (priority-ordered rule tables must be
kept sorted, forcing entry shuffles) and its power grows steeply with
capacity (see :mod:`repro.tcam.power`).

The functional model stores {value, mask, priority} rules over fixed-width
integer keys and returns the highest-priority match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

#: Search latency in cycles — "TCAM can execute one data lookup operation in
#: a few clock cycles" (paper §1, [58]).
TCAM_SEARCH_CYCLES = 4

#: Per-displaced-entry cost of a priority-preserving update (paper: updates
#: are expensive and inflexible [67]).
TCAM_UPDATE_CYCLES_PER_MOVE = 8


@dataclass(frozen=True)
class TernaryRule:
    """One TCAM entry: ``key`` matches iff (key & mask) == (value & mask)."""

    value: int
    mask: int
    priority: int
    action: Any = None

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.value & self.mask)


@dataclass
class TcamStats:
    searches: int = 0
    hits: int = 0
    updates: int = 0
    update_moves: int = 0


@dataclass
class TcamMatch:
    rule: TernaryRule
    index: int
    latency: int = TCAM_SEARCH_CYCLES


class Tcam:
    """A capacity-bounded ternary match engine."""

    def __init__(self, capacity_rules: int, key_bits: int = 104) -> None:
        # 104 bits = the 5-tuple (src/dst IP, src/dst port, proto).
        if capacity_rules < 1:
            raise ValueError("TCAM capacity must be positive")
        self.capacity = capacity_rules
        self.key_bits = key_bits
        self._rules: List[TernaryRule] = []   # kept sorted by priority desc
        self.stats = TcamStats()

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def full(self) -> bool:
        return len(self._rules) >= self.capacity

    def install(self, rule: TernaryRule) -> int:
        """Insert a rule, keeping priority order; returns the update cost.

        The cost models the entry moves a real TCAM performs to keep
        higher-priority rules at lower indices.
        """
        if self.full:
            raise OverflowError("TCAM full")
        position = 0
        while (position < len(self._rules)
               and self._rules[position].priority >= rule.priority):
            position += 1
        moves = len(self._rules) - position
        self._rules.insert(position, rule)
        self.stats.updates += 1
        self.stats.update_moves += moves
        return TCAM_SEARCH_CYCLES + moves * TCAM_UPDATE_CYCLES_PER_MOVE

    def remove(self, rule: TernaryRule) -> bool:
        try:
            self._rules.remove(rule)
        except ValueError:
            return False
        self.stats.updates += 1
        return True

    def search(self, key: int) -> Optional[TcamMatch]:
        """Parallel match: first (highest-priority) matching rule."""
        self.stats.searches += 1
        for index, rule in enumerate(self._rules):
            if rule.matches(key):
                self.stats.hits += 1
                return TcamMatch(rule=rule, index=index)
        return None

    def search_latency(self) -> int:
        """Constant, capacity-independent search latency."""
        return TCAM_SEARCH_CYCLES


def exact_rule(value: int, key_bits: int, priority: int = 0,
               action: Any = None) -> TernaryRule:
    """A fully-specified (no-wildcard) rule — TCAM as an exact-match table."""
    return TernaryRule(value=value, mask=(1 << key_bits) - 1,
                       priority=priority, action=action)
