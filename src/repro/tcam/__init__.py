"""TCAM and SRAM-TCAM comparator models with Table-4 power/area figures."""

from .power import (
    BYTES_PER_5TUPLE_RULE,
    TCAM_TABLE4,
    capacity_for_rules,
    halo_vs_tcam_efficiency,
    sram_tcam_envelope,
    tcam_envelope,
)
from .sram_tcam import SRAM_TCAM_SEARCH_CYCLES, SramTcam
from .tcam import (
    TCAM_SEARCH_CYCLES,
    Tcam,
    TcamMatch,
    TernaryRule,
    exact_rule,
)

__all__ = [
    "BYTES_PER_5TUPLE_RULE",
    "SRAM_TCAM_SEARCH_CYCLES",
    "SramTcam",
    "TCAM_SEARCH_CYCLES",
    "TCAM_TABLE4",
    "Tcam",
    "TcamMatch",
    "TernaryRule",
    "capacity_for_rules",
    "exact_rule",
    "halo_vs_tcam_efficiency",
    "sram_tcam_envelope",
    "tcam_envelope",
]
