"""SRAM-based TCAM emulation (Z-TCAM-style, paper refs [75-77]).

Partitions a ternary table into small sub-tables, each realised in an SRAM
block with added match logic.  Compared with a native TCAM of the same
capacity it consumes ~45% less power and ~57% less area (paper §6.4), at a
slightly higher search latency (the partitioned match pipeline adds stages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .tcam import Tcam, TcamMatch, TernaryRule

#: The partition/match pipeline adds a couple of stages over native TCAM.
SRAM_TCAM_SEARCH_CYCLES = 7

#: Relative savings vs a native TCAM of the same capacity (paper §6.4).
POWER_SAVING = 0.45
AREA_SAVING = 0.57


@dataclass
class PartitionStats:
    partition_searches: int = 0


class SramTcam:
    """A partitioned SRAM emulation of a TCAM."""

    def __init__(self, capacity_rules: int, key_bits: int = 104,
                 partition_rules: int = 64) -> None:
        if partition_rules < 1:
            raise ValueError("partition size must be positive")
        self.capacity = capacity_rules
        self.key_bits = key_bits
        self.partition_rules = partition_rules
        partitions = max(1, (capacity_rules + partition_rules - 1)
                         // partition_rules)
        self._partitions: List[Tcam] = [
            Tcam(partition_rules, key_bits) for _ in range(partitions)]
        self.partition_stats = PartitionStats()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def num_partitions(self) -> int:
        return len(self._partitions)

    def install(self, rule: TernaryRule) -> int:
        """Place the rule in the least-loaded partition with room."""
        if self._count >= self.capacity:
            raise OverflowError("SRAM-TCAM full")
        target = min((p for p in self._partitions if not p.full),
                     key=len, default=None)
        if target is None:
            raise OverflowError("all partitions full")
        cost = target.install(rule)
        self._count += 1
        return cost

    def search(self, key: int) -> Optional[TcamMatch]:
        """All partitions match in parallel; priority-arbitrate the winners."""
        best: Optional[TcamMatch] = None
        for partition in self._partitions:
            self.partition_stats.partition_searches += 1
            match = partition.search(key)
            if match is None:
                continue
            if best is None or match.rule.priority > best.rule.priority:
                best = match
        if best is not None:
            best = TcamMatch(rule=best.rule, index=best.index,
                             latency=SRAM_TCAM_SEARCH_CYCLES)
        return best

    def search_latency(self) -> int:
        return SRAM_TCAM_SEARCH_CYCLES
