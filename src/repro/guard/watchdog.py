"""The engine watchdog: budgets, livelock detection, deadlock dumps.

Real simulators (gem5's ``--abort-tick``, SimPy's ``until`` discipline)
refuse to hang silently; this watchdog gives the DES engine the same
property.  It observes every dispatched event (via the engine's guard
hook) and raises a structured :mod:`repro.guard.errors` exception when:

* a **cycle / event / wall-clock budget** runs out — runaway configs and
  host-side hangs die with a dump instead of eating the campaign's time;
* **no simulated-time progress** happens across ``stall_events``
  consecutive events — the livelock signature of processes ping-ponging
  at one cycle (e.g. a snoop-retry loop against a stuck lock bit);
* the **calendar drains while processes are still blocked** — true
  deadlock, reported with every blocked process and its waitable.

The watchdog only reads engine state; simulated time is bit-identical
with or without it (the guard-parity test pins this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

from .errors import BudgetExceededError, DeadlockError, StallError, blocked_dump


@dataclass(frozen=True)
class WatchdogConfig:
    """Budgets and detection knobs; ``None`` disables that check.

    ``max_cycles``/``max_events`` are measured from :meth:`Watchdog.start`
    (guard attachment), not from engine construction, so a watchdog can be
    attached to a warmed-up engine.  ``wall_check_every`` rate-limits the
    host-clock reads so the per-event cost stays a couple of integer ops.
    """

    max_cycles: Optional[float] = None
    max_events: Optional[int] = None
    max_wall_seconds: Optional[float] = None
    stall_events: Optional[int] = 100_000
    detect_deadlock: bool = True
    wall_check_every: int = 4096


class Watchdog:
    """Budget + deadlock/livelock enforcement over one engine."""

    def __init__(self, config: Optional[WatchdogConfig] = None) -> None:
        self.config = config or WatchdogConfig()
        self._start_events = 0
        self._start_cycles = 0.0
        self._start_wall = 0.0
        self._progress_now = 0.0
        self._progress_events = 0
        self.started = False

    def start(self, engine: Any) -> None:
        """Record baselines; called when the guard is attached."""
        self._start_events = engine.events_processed
        self._start_cycles = engine.now
        self._start_wall = time.monotonic()
        self._progress_now = engine.now
        self._progress_events = engine.events_processed
        self.started = True

    # -- per-event check (the hot path) -------------------------------------
    def check(self, engine: Any) -> None:
        config = self.config
        now = engine.now
        events = engine.events_processed
        if now > self._progress_now:
            self._progress_now = now
            self._progress_events = events
        elif (config.stall_events is not None
                and events - self._progress_events >= config.stall_events):
            raise StallError(blocked_dump(engine), now,
                             events - self._progress_events)
        if (config.max_cycles is not None
                and now - self._start_cycles > config.max_cycles):
            raise BudgetExceededError("cycle", config.max_cycles,
                                      now - self._start_cycles,
                                      blocked_dump(engine), now)
        ran = events - self._start_events
        if config.max_events is not None and ran > config.max_events:
            raise BudgetExceededError("event", config.max_events, ran,
                                      blocked_dump(engine), now)
        if (config.max_wall_seconds is not None
                and ran % config.wall_check_every == 0):
            elapsed = time.monotonic() - self._start_wall
            if elapsed > config.max_wall_seconds:
                raise BudgetExceededError("wall-clock", config.max_wall_seconds,
                                          elapsed, blocked_dump(engine), now)

    # -- drain check --------------------------------------------------------
    def on_drain(self, engine: Any) -> None:
        """Calendar empty: any still-blocked process is a deadlock."""
        if not self.config.detect_deadlock:
            return
        blocked = blocked_dump(engine)
        if blocked:
            raise DeadlockError(blocked, engine.now, engine.events_processed)
