"""The guard object the engine holds: watchdog + invariant checker.

:class:`EngineGuard` is the single attachment point
(``engine.attach_guard(guard)``): it multiplexes the engine's two hook
sites — ``before_event`` on every dispatched event, ``on_drain`` when
the calendar empties — into the :class:`~repro.guard.watchdog.Watchdog`
and :class:`~repro.guard.invariants.InvariantChecker`, and publishes
what it observed as a ``guard.*`` metrics pull source plus a trace span
per violation (when wired to an :mod:`repro.obs` registry/recorder by
:func:`repro.guard.presets.attach_standard_guard`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from .invariants import Invariant, InvariantChecker
from .watchdog import Watchdog, WatchdogConfig


class EngineGuard:
    """Watchdog + invariant checking bound to one engine."""

    def __init__(self, watchdog: Optional[Watchdog] = None,
                 invariants: Iterable[Invariant] = (),
                 cadence: int = 256, strict: bool = True,
                 trace: Optional[Any] = None) -> None:
        self.watchdog = watchdog
        invariants = list(invariants)
        self.checker = (InvariantChecker(invariants, cadence=cadence,
                                         strict=strict)
                        if invariants else None)
        self.trace = trace
        self.events_observed = 0
        self._violations_traced = 0

    # -- engine hook protocol ------------------------------------------------
    def on_attach(self, engine: Any) -> None:
        if self.watchdog is not None:
            self.watchdog.start(engine)

    def before_event(self, engine: Any) -> None:
        self.events_observed += 1
        if self.watchdog is not None:
            self.watchdog.check(engine)
        if self.checker is not None:
            self.checker.maybe_check(engine)
            self._trace_new_violations(engine)

    def on_drain(self, engine: Any) -> None:
        if self.checker is not None:
            # Final sweep so violations between the last cadence sample
            # and the drain still surface.
            self.checker.check_now(engine)
            self._trace_new_violations(engine)
        if self.watchdog is not None:
            self.watchdog.on_drain(engine)

    def _trace_new_violations(self, engine: Any) -> None:
        """Record one root span per new (non-strict) violation."""
        if self.trace is None or self.checker is None:
            return
        pending = self.checker.violations[self._violations_traced:]
        for name, detail, at_cycle in pending:
            span = self.trace.root("guard.violation", at_cycle,
                                   invariant=name, detail=detail)
            span.finish(at_cycle)
        self._violations_traced = len(self.checker.violations)

    # -- metrics pull source -------------------------------------------------
    def as_dict(self) -> Dict[str, float]:
        """Flat scalar view for the metrics registry (``guard.*``)."""
        out: Dict[str, float] = {"events_observed": self.events_observed}
        if self.checker is not None:
            out["invariants"] = len(self.checker.invariants)
            out["invariant_checks"] = self.checker.checks
            out["invariant_violations"] = len(self.checker.violations)
        if self.watchdog is not None:
            config = self.watchdog.config
            out["watchdog_deadlock_detection"] = int(config.detect_deadlock)
            out["watchdog_stall_events"] = config.stall_events or 0
        return out


def default_guard(config: Optional[WatchdogConfig] = None,
                  invariants: Iterable[Invariant] = (),
                  cadence: int = 256, strict: bool = True) -> EngineGuard:
    """A guard with a watchdog always on and optional invariants."""
    return EngineGuard(watchdog=Watchdog(config), invariants=invariants,
                       cadence=cadence, strict=strict)
