"""Convenience wiring: the standard invariant catalog for a HaloSystem.

:func:`standard_invariants` walks a live ``HaloSystem`` *by attribute*
(duck-typed — this module never imports ``repro.core``/``repro.sim``, so
the layering stays one-directional) and instantiates the built-in
invariants over every seam it finds:

* every L1/L2/LLC cache's set occupancy (≤ ways per set);
* every accelerator scoreboard's slot conservation (in-use + free ==
  capacity, no waiter starved behind a free slot);
* hardware lock-bit acquire/release pairing across the LLC;
* interconnect message/hop conservation (holds under fault
  drop/duplicate plans too).

:func:`attach_standard_guard` bundles them with a watchdog into an
:class:`~repro.guard.engine_guard.EngineGuard`, attaches it to the
system's engine, and registers the ``guard.*`` metrics pull source so
``python -m repro report`` shows what the safety net observed.
:func:`maybe_attach_guard` is the env-gated variant experiment modules
call (``REPRO_GUARD=1`` turns the net on for a whole campaign).
"""

from __future__ import annotations

import os
from typing import Any, List, Optional

from .engine_guard import EngineGuard
from .invariants import (
    Invariant,
    cache_occupancy,
    interconnect_conservation,
    lock_bit_accounting,
    resource_conservation,
)
from .watchdog import Watchdog, WatchdogConfig

GUARD_ENV = "REPRO_GUARD"


def guard_env_enabled() -> bool:
    """``REPRO_GUARD=1`` (or ``true``/``on``/``yes``) opts a run in."""
    return os.environ.get(GUARD_ENV, "0").lower() in ("1", "true", "on", "yes")


def standard_invariants(system: Any) -> List[Invariant]:
    """The built-in invariant catalog over one ``HaloSystem``."""
    invariants: List[Invariant] = []
    hierarchy = system.hierarchy
    for cache in (*hierarchy.l1, *hierarchy.l2, *hierarchy.llc):
        invariants.append(cache_occupancy(cache))
    for accelerator in system.accelerators:
        invariants.append(resource_conservation(
            accelerator.scoreboard._slots,
            f"scoreboard.s{accelerator.slice_id}"))
    invariants.append(lock_bit_accounting(system.lock_manager))
    invariants.append(interconnect_conservation(hierarchy.interconnect))
    return invariants


def attach_standard_guard(system: Any,
                          config: Optional[WatchdogConfig] = None,
                          cadence: int = 256,
                          strict: bool = True) -> EngineGuard:
    """Attach watchdog + standard invariants to ``system`` and register
    the ``guard`` metrics source; returns the guard."""
    guard = EngineGuard(watchdog=Watchdog(config),
                        invariants=standard_invariants(system),
                        cadence=cadence, strict=strict,
                        trace=system.obs.trace)
    system.engine.attach_guard(guard)
    system.obs.metrics.register_source("guard", guard.as_dict)
    return guard


def maybe_attach_guard(system: Any,
                       config: Optional[WatchdogConfig] = None,
                       cadence: int = 256,
                       strict: bool = True) -> Optional[EngineGuard]:
    """Attach the standard guard when ``REPRO_GUARD`` opts in, else no-op."""
    if not guard_env_enabled():
        return None
    return attach_standard_guard(system, config=config, cadence=cadence,
                                 strict=strict)
