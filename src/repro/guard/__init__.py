"""``repro.guard`` — the simulation safety net.

Two cooperating layers give the harness the discipline real simulators
have (gem5-style abort budgets, deadlock dumps, checkpoint-friendly
failure modes):

* the **engine watchdog** (:mod:`repro.guard.watchdog`) — configurable
  cycle/event/wall-clock budgets, livelock detection (no ``now``
  progress across N events), and true-deadlock detection (calendar empty
  with processes still blocked), each raising a structured error that
  names every blocked process and what it is waiting on;
* the **invariant checker** (:mod:`repro.guard.invariants`) — pluggable,
  cadence-sampled predicates over fixed model seams (cache occupancy,
  scoreboard/Resource conservation, lock-bit pairing, NoC message
  accounting), zero-overhead when not attached.

Attach via ``engine.attach_guard(EngineGuard(...))`` or the
:mod:`repro.guard.presets` helpers (``REPRO_GUARD=1`` opts whole
campaigns in).  Layering: ``guard`` sits directly above ``obs``; of the
layers above it only ``sim``, ``runner``, and ``analysis`` may import it
(enforced by ``scripts/check_layering.py``).
"""

from __future__ import annotations

from .engine_guard import EngineGuard, default_guard
from .errors import (
    BlockedProcess,
    BudgetExceededError,
    DeadlockError,
    GuardError,
    InvariantViolation,
    StallError,
    blocked_dump,
    describe_waitable,
)
from .invariants import (
    Invariant,
    InvariantChecker,
    cache_occupancy,
    interconnect_conservation,
    lock_bit_accounting,
    resource_conservation,
    store_consistency,
)
from .presets import (
    GUARD_ENV,
    attach_standard_guard,
    guard_env_enabled,
    maybe_attach_guard,
    standard_invariants,
)
from .watchdog import Watchdog, WatchdogConfig

__all__ = [
    "BlockedProcess",
    "BudgetExceededError",
    "DeadlockError",
    "EngineGuard",
    "GUARD_ENV",
    "GuardError",
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "StallError",
    "Watchdog",
    "WatchdogConfig",
    "attach_standard_guard",
    "blocked_dump",
    "cache_occupancy",
    "default_guard",
    "describe_waitable",
    "guard_env_enabled",
    "interconnect_conservation",
    "lock_bit_accounting",
    "maybe_attach_guard",
    "resource_conservation",
    "standard_invariants",
    "store_consistency",
]
