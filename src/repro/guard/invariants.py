"""Runtime invariant checking over fixed model seams.

An :class:`Invariant` is a named zero-argument predicate returning
``None`` when the seam is healthy or a one-line detail string when it is
not.  The :class:`InvariantChecker` samples every registered predicate on
a fixed event cadence (and once more when the calendar drains), so the
cost is ``O(invariants / cadence)`` per event and exactly zero when no
checker is attached — the same zero-overhead-when-disabled discipline as
:mod:`repro.obs`.

The built-in factories below cover the seams the model is most likely to
corrupt silently.  They are deliberately *duck-typed* — each takes the
live model object and closes over it — so this module imports nothing
from :mod:`repro.sim` or :mod:`repro.core` and the layering stays
one-directional (``guard`` sits just above ``obs``).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from .errors import InvariantViolation


class Invariant:
    """A named predicate over one model seam."""

    __slots__ = ("name", "predicate")

    def __init__(self, name: str,
                 predicate: Callable[[], Optional[str]]) -> None:
        self.name = name
        self.predicate = predicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Invariant({self.name})"


class InvariantChecker:
    """Cadence-sampled evaluation of a set of invariants.

    ``strict=True`` (default) raises :class:`InvariantViolation` on the
    first broken predicate; ``strict=False`` records the violation (in
    ``violations`` and the optional metrics counters) and keeps running —
    the mode campaign sweeps use so one bad cell doesn't mask the rest.
    """

    def __init__(self, invariants: Any, cadence: int = 256,
                 strict: bool = True) -> None:
        if cadence < 1:
            raise ValueError("cadence must be >= 1")
        self.invariants: List[Invariant] = list(invariants)
        self.cadence = cadence
        self.strict = strict
        self.checks = 0
        self.violations: List[Tuple[str, str, float]] = []
        self._since_check = 0

    def add(self, invariant: Invariant) -> None:
        self.invariants.append(invariant)

    def maybe_check(self, engine: Any) -> None:
        """Per-event hook: run the predicates every ``cadence`` events."""
        self._since_check += 1
        if self._since_check < self.cadence:
            return
        self._since_check = 0
        self.check_now(engine)

    def check_now(self, engine: Any) -> None:
        """Evaluate every invariant immediately (cadence ignored)."""
        for invariant in self.invariants:
            self.checks += 1
            detail = invariant.predicate()
            if detail is None:
                continue
            self.violations.append((invariant.name, detail, engine.now))
            if self.strict:
                raise InvariantViolation(invariant.name, detail, engine.now,
                                         engine.events_processed)


# -- built-in invariant factories (duck-typed over live model objects) -------

def cache_occupancy(cache: Any) -> Invariant:
    """No set may hold more lines than the cache has ways."""
    def predicate() -> Optional[str]:
        for index, cache_set in cache._sets.items():
            if len(cache_set) > cache.assoc:
                return (f"set {index} holds {len(cache_set)} lines "
                        f"> {cache.assoc} ways")
        return None
    return Invariant(f"cache.{cache.name}.occupancy", predicate)


def resource_conservation(resource: Any, name: str) -> Invariant:
    """MSHR/scoreboard conservation: ``0 <= in_use <= capacity``, and no
    waiter starves behind a free slot (free capacity with a live queue
    means a lost wakeup)."""
    def predicate() -> Optional[str]:
        if not 0 <= resource.in_use <= resource.capacity:
            return (f"in_use {resource.in_use} outside "
                    f"[0, {resource.capacity}]")
        if resource.in_use < resource.capacity:
            live = sum(1 for event in resource._queue if not event.abandoned)
            if live:
                return (f"{resource.capacity - resource.in_use} free slot(s) "
                        f"while {live} live waiter(s) queued (starvation)")
        return None
    return Invariant(f"resource.{name}.conservation", predicate)


def store_consistency(store: Any, name: str) -> Invariant:
    """A Store never buffers items while live getters are queued."""
    def predicate() -> Optional[str]:
        if not store._items:
            return None
        live = sum(1 for event in store._getters if not event.abandoned)
        if live:
            return (f"{len(store._items)} item(s) buffered while {live} "
                    f"live getter(s) wait")
        return None
    return Invariant(f"store.{name}.consistency", predicate)


def lock_bit_accounting(manager: Any) -> Invariant:
    """Hardware lock-bit acquire/release pairing (``core/locking.py``):
    the outstanding balance never goes negative, and the LLC never holds
    more locked lines than the balance explains."""
    def predicate() -> Optional[str]:
        stats = manager.stats
        held = stats.lock_operations - stats.unlock_operations
        if held < 0:
            return (f"unlock without matching lock: balance {held} "
                    f"({stats.lock_operations} locks, "
                    f"{stats.unlock_operations} unlocks)")
        resident = sum(cache.locked_lines for cache in manager.hierarchy.llc)
        if resident > held:
            return (f"{resident} locked LLC line(s) but only {held} "
                    f"outstanding acquire(s)")
        return None
    return Invariant("locks.pairing", predicate)


def interconnect_conservation(interconnect: Any) -> Invariant:
    """NoC message accounting stays sane under fault drop/duplicate
    plans: counts never go negative and hop totals stay within the
    worst-case path length per message."""
    def predicate() -> Optional[str]:
        stats = interconnect.stats
        if stats.messages < 0 or stats.total_hops < 0:
            return (f"negative traffic counters: messages={stats.messages}, "
                    f"total_hops={stats.total_hops}")
        max_hops = interconnect.stops  # no route exceeds the stop count
        if stats.total_hops > stats.messages * max_hops:
            return (f"{stats.total_hops} hops across {stats.messages} "
                    f"messages exceeds {max_hops} hops/message worst case")
        return None
    return Invariant("interconnect.conservation", predicate)
