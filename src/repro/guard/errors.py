"""Structured guard failures: what went wrong, and who was blocked on what.

Every error the safety net raises carries machine-readable context — the
list of blocked processes with a human-readable description of each
process's waitable — so a hung campaign fails with a gem5-style deadlock
dump instead of a bare traceback.  The description logic is duck-typed
over the engine's waitables (``Timeout``/``Event``/``Process`` and the
``Resource``/``Store`` back-references events carry in ``source``), so
this module imports nothing from :mod:`repro.sim`; the engine stays free
to import nothing from here either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence


class GuardError(RuntimeError):
    """Base class for everything the safety net raises."""


@dataclass(frozen=True)
class BlockedProcess:
    """One blocked process in a deadlock/stall dump."""

    name: str
    waiting_on: str

    def render(self) -> str:
        return f"{self.name} -> waiting on {self.waiting_on}"


def describe_waitable(waitable: Any) -> str:
    """One line saying what a blocked process is waiting for."""
    if waitable is None:
        return "nothing (runnable)"
    # Timeout before plain Event: it subclasses Event and knows its deadline.
    at = getattr(waitable, "at", None)
    if at is not None:
        return f"timeout firing at cycle {at:g}"
    generator = getattr(waitable, "generator", None)
    if generator is not None:  # a Process joined with `yield proc`
        name = getattr(waitable, "name", "process")
        return f"process {name!r} to finish"
    source = getattr(waitable, "source", None)
    if source is not None:
        queue = getattr(source, "_queue", None)
        if queue is not None:  # Resource acquire event
            try:
                position = queue.index(waitable) + 1
            except ValueError:
                position = 0
            where = (f"queue position {position}/{len(queue)}"
                     if position else "granted, not yet resumed")
            return (f"Resource(capacity={source.capacity}, "
                    f"in_use={source.in_use}) {where}")
        getters = getattr(source, "_getters", None)
        if getters is not None:  # Store get event
            return (f"Store get ({len(source)} item(s) buffered, "
                    f"{len(getters)} getter(s) queued)")
    waiters = len(getattr(waitable, "_waiters", ()))
    return f"untriggered event ({waiters} waiter(s))"


def blocked_dump(engine: Any) -> List[BlockedProcess]:
    """Every blocked process on ``engine``, with described waitables."""
    return [BlockedProcess(name=process.name,
                           waiting_on=describe_waitable(process.waiting_on))
            for process in engine.blocked_processes()]


def _render_dump(headline: str, blocked: Sequence[BlockedProcess]) -> str:
    lines = [headline]
    if blocked:
        lines.append(f"{len(blocked)} blocked process(es):")
        lines.extend(f"  {entry.render()}" for entry in blocked)
    return "\n".join(lines)


class DeadlockError(GuardError):
    """The event calendar drained while processes remained blocked."""

    def __init__(self, blocked: Sequence[BlockedProcess], now: float,
                 events_processed: int) -> None:
        self.blocked = list(blocked)
        self.now = now
        self.events_processed = events_processed
        super().__init__(_render_dump(
            f"deadlock at cycle {now:g} after {events_processed} events: "
            f"event calendar is empty but processes are still waiting",
            self.blocked))


class StallError(GuardError):
    """Livelock: events keep firing but simulated time stopped advancing."""

    def __init__(self, blocked: Sequence[BlockedProcess], now: float,
                 stalled_events: int) -> None:
        self.blocked = list(blocked)
        self.now = now
        self.stalled_events = stalled_events
        super().__init__(_render_dump(
            f"stall at cycle {now:g}: {stalled_events} events fired without "
            f"simulated time advancing (livelock)",
            self.blocked))


class BudgetExceededError(GuardError):
    """A configured cycle/event/wall-clock budget ran out."""

    def __init__(self, budget: str, limit: float, actual: float,
                 blocked: Sequence[BlockedProcess], now: float) -> None:
        self.budget = budget
        self.limit = limit
        self.actual = actual
        self.blocked = list(blocked)
        self.now = now
        super().__init__(_render_dump(
            f"{budget} budget exceeded at cycle {now:g}: "
            f"{actual:g} > limit {limit:g}",
            self.blocked))


class InvariantViolation(GuardError):
    """A runtime invariant predicate reported a broken model seam."""

    def __init__(self, name: str, detail: str, now: float,
                 events_processed: int) -> None:
        self.name = name
        self.detail = detail
        self.now = now
        self.events_processed = events_processed
        super().__init__(
            f"invariant {name!r} violated at cycle {now:g} "
            f"(event {events_processed}): {detail}")
