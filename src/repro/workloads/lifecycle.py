"""Flow-lifecycle building blocks: arrival processes, size distributions,
and popularity skew.

Everything here is a small deterministic sampler over a private
``random.Random`` stream (stdlib only — the churn engine must work on the
no-numpy leg), forked per component from one master seed so adding a
component never perturbs another's stream:

* :class:`PoissonArrivals` / :class:`MmppArrivals` — how many flows start
  per tick (MMPP switches between a quiet and a bursty Poisson rate with
  exponentially distributed dwell times, the standard model for
  correlated arrival bursts);
* :class:`ParetoSizes` — flow length in packets, heavy-tailed: most flows
  are mice, a few elephants carry most packets;
* :class:`ZipfSelector` — which *live* flow the next packet belongs to,
  rank-skewed so low-rank (old, hot) flows dominate.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence


def fork_rng(seed: int, tag: str) -> random.Random:
    """A child RNG stream deterministically derived from (seed, tag)."""
    mix = seed & 0xFFFFFFFFFFFFFFFF
    for ch in tag:
        mix = (mix ^ ord(ch)) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF
    return random.Random(mix)


class PoissonArrivals:
    """Poisson flow arrivals: per-tick count ~ Bernoulli-thinned rate.

    ``count(multiplier)`` returns how many flows start this tick for a
    mean rate of ``rate * multiplier`` flows/tick, sampled by inversion
    (exact for the small per-tick means churn scenarios use).
    """

    def __init__(self, rate: float, rng: random.Random) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.rate = rate
        self._rng = rng

    def count(self, multiplier: float = 1.0) -> int:
        mean = self.rate * multiplier
        if mean <= 0:
            return 0
        # Inverse-CDF Poisson sampling (Knuth's product form in log space
        # is unnecessary at the sub-10 means churn ticks run at).
        target = self._rng.random()
        probability = 2.718281828459045 ** (-mean)
        cumulative = probability
        count = 0
        while target > cumulative and count < 1024:
            count += 1
            probability *= mean / count
            cumulative += probability
        return count


class MmppArrivals:
    """A 2-state Markov-modulated Poisson process.

    State 0 arrives at ``quiet_rate``, state 1 at ``burst_rate``; dwell
    times in each state are geometric with the given mean ticks.  The
    effective rate multiplier composes with the diurnal curve.
    """

    def __init__(self, quiet_rate: float, burst_rate: float,
                 mean_quiet_ticks: float, mean_burst_ticks: float,
                 rng: random.Random) -> None:
        if min(quiet_rate, burst_rate) < 0:
            raise ValueError("rates must be >= 0")
        if min(mean_quiet_ticks, mean_burst_ticks) <= 0:
            raise ValueError("dwell times must be positive")
        self._rates = (quiet_rate, burst_rate)
        self._switch = (1.0 / mean_quiet_ticks, 1.0 / mean_burst_ticks)
        self._rng = rng
        self._arrivals = PoissonArrivals(1.0, rng)
        self.state = 0

    def count(self, multiplier: float = 1.0) -> int:
        if self._rng.random() < self._switch[self.state]:
            self.state ^= 1
        self._arrivals.rate = self._rates[self.state]
        return self._arrivals.count(multiplier)


class ParetoSizes:
    """Heavy-tailed flow sizes: ``size = min_packets / U**(1/alpha)``.

    ``alpha`` near 1 gives the classic elephant/mice split; ``cap``
    truncates the tail so one flow cannot absorb a whole run.
    """

    def __init__(self, alpha: float, min_packets: int, cap: int,
                 rng: random.Random) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 1 <= min_packets <= cap:
            raise ValueError("need 1 <= min_packets <= cap")
        self.alpha = alpha
        self.min_packets = min_packets
        self.cap = cap
        self._rng = rng

    def sample(self) -> int:
        uniform = 1.0 - self._rng.random()   # (0, 1]
        size = int(self.min_packets * uniform ** (-1.0 / self.alpha))
        return min(max(size, self.min_packets), self.cap)


class ZipfSelector:
    """Zipf(s) rank selection over a changing population.

    ``pick(n)`` returns a rank in ``[0, n)`` with P(r) ∝ (r+1)**-s.  The
    rank CDF is cached and rebuilt only when the population has drifted
    past ``rebuild_slack`` of the cached size, keeping selection O(log n)
    per packet while the live-flow set churns.  Ranks beyond the cached
    table clamp to the tail, so correctness never depends on the rebuild
    heuristic.
    """

    def __init__(self, s: float, rng: random.Random,
                 rebuild_slack: float = 0.25) -> None:
        if s < 0:
            raise ValueError("skew must be >= 0")
        self.s = s
        self._rng = rng
        self._slack = rebuild_slack
        self._cdf: List[float] = []

    def _rebuild(self, n: int) -> None:
        weights = [(rank + 1) ** -self.s for rank in range(n)]
        total = 0.0
        cdf = []
        for weight in weights:
            total += weight
            cdf.append(total)
        self._cdf = [value / total for value in cdf]

    def pick(self, n: int) -> int:
        if n <= 1:
            return 0
        if self.s == 0:
            return self._rng.randrange(n)
        cached = len(self._cdf)
        if cached == 0 or abs(n - cached) > self._slack * cached:
            self._rebuild(n)
        rank = bisect.bisect_left(self._cdf, self._rng.random())
        return min(rank, n - 1)


def harmonic_weights(n: int, s: float) -> Sequence[float]:
    """Normalised Zipf(s) weights for ``n`` ranks (analysis helper)."""
    weights = [(rank + 1) ** -s for rank in range(n)]
    total = sum(weights)
    return [weight / total for weight in weights]
