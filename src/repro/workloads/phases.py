"""Phase scripting for workload scenarios: duty-cycle windows and diurnal
load curves.

Mirrors the :mod:`repro.faults` duty-cycle idiom (a window is active for
``duty`` of every ``period`` ticks between ``start`` and ``end``) without
importing the faults layer — workloads drive the dataplane, faults break
the hardware, and the two stay independent.  A
:class:`DiurnalCurve` modulates the arrival rate smoothly, so a day's
load swing compresses into however many ticks a run can afford.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PhaseWindow:
    """A duty-cycled activity window over workload time (ticks).

    Active from ``start`` to ``end``; with a ``period``, only for the
    first ``duty`` fraction of each period (an on/off burst train —
    exactly the shape SYN-flood waves arrive in).
    """

    start: float = 0.0
    end: float = math.inf
    period: float = 0.0
    duty: float = 1.0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("window must not end before it starts")
        if self.period < 0:
            raise ValueError("period must be >= 0")
        if not 0.0 <= self.duty <= 1.0:
            raise ValueError("duty must be within [0, 1]")

    def active(self, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.period <= 0 or self.duty >= 1.0:
            return True
        return (now - self.start) % self.period < self.duty * self.period


@dataclass(frozen=True)
class DiurnalCurve:
    """A raised-cosine load multiplier: ``low`` at the trough, ``high``
    at the peak, one full swing per ``period`` ticks.

    ``multiplier(0) == low`` (runs start at the quiet point); ``phase``
    shifts the trough as a fraction of the period.
    """

    period: float
    low: float = 0.5
    high: float = 1.5
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.low < 0 or self.high < self.low:
            raise ValueError("need 0 <= low <= high")

    def multiplier(self, now: float) -> float:
        swing = (1.0 - math.cos(
            2.0 * math.pi * (now / self.period + self.phase))) / 2.0
        return self.low + (self.high - self.low) * swing
