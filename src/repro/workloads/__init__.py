"""``repro.workloads`` — scalable churn/attack traffic scenarios.

The Figure-3 profiles are static: a fixed flow population, uniformly
replayed.  Production NFV traffic is not — flows arrive and depart at
high rates, packet popularity is Zipf-skewed, sizes are Pareto
heavy-tailed, SYN floods arrive in duty-cycled waves, and load swings
diurnally.  This package scripts those regimes (ROADMAP item 3) as
seed-deterministic *streaming* generators sized for million-flow
scenarios.

Public contract: :class:`ChurnSpec` (+ its ``steady`` / ``high_churn`` /
``syn_flood`` presets) and :class:`ChurnEngine` with its lazy
``packets(n)`` / ``keys(n)`` iterators and ``ChurnStats`` counters;
:class:`PhaseWindow` and :class:`DiurnalCurve` for phase scripting; the
lifecycle samplers (:class:`PoissonArrivals`, :class:`MmppArrivals`,
:class:`ParetoSizes`, :class:`ZipfSelector`).  Layering: ``workloads``
sits above the dataplane and may only be imported by ``analysis`` and
``runner`` (enforced by ``scripts/check_layering.py``); everything here
is stdlib-only and works on the no-numpy leg.
"""

from .churn import ChurnEngine, ChurnSpec, ChurnStats
from .lifecycle import (
    MmppArrivals,
    ParetoSizes,
    PoissonArrivals,
    ZipfSelector,
    fork_rng,
    harmonic_weights,
)
from .phases import DiurnalCurve, PhaseWindow

__all__ = [
    "ChurnEngine",
    "ChurnSpec",
    "ChurnStats",
    "DiurnalCurve",
    "MmppArrivals",
    "ParetoSizes",
    "PhaseWindow",
    "PoissonArrivals",
    "ZipfSelector",
    "fork_rng",
    "harmonic_weights",
]
