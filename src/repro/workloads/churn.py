"""The streaming churn engine: phase-scripted flow lifecycles composed
into lazily generated lookup streams.

A :class:`ChurnSpec` scripts a scenario — arrival process (Poisson or
2-state MMPP), Pareto flow sizes, Zipf packet skew over the live flows,
optional duty-cycled SYN-flood windows, optional diurnal rate curve —
and a :class:`ChurnEngine` turns it into an iterator of
:class:`~repro.classifier.flow.FiveTuple` packets.

Public contract: ``ChurnEngine(spec).packets(n)`` is a *generator* —
packets are derived on demand from integer flow ids
(:func:`~repro.classifier.flow.make_flow`), so memory is bounded by the
number of *concurrently live* flows (``spec.max_live``), never by the
total flow population: a million-flow, hundred-million-packet scenario
streams in a few megabytes.  Streams are seed-deterministic: equal specs
yield bit-identical packet sequences, on any host, with or without
numpy.  ``ChurnStats`` (arrivals/departures/peak_live/syn_packets) is
updated as the stream is consumed.  The classmethod presets
(``steady``/``high_churn``/``syn_flood``) are the scenarios the
``cache_churn`` experiment and the ``emc_churn`` perf bench sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..classifier.flow import FiveTuple, PROTO_TCP, make_flow
from .lifecycle import (MmppArrivals, ParetoSizes, PoissonArrivals,
                        ZipfSelector, fork_rng)
from .phases import DiurnalCurve, PhaseWindow

#: Flow-id bit reserved for attack traffic, so SYN-flood sources never
#: collide with legitimate flow ids.
_ATTACK_ID_BASE = 1 << 30


@dataclass(frozen=True)
class ChurnSpec:
    """One scripted churn scenario (all parameters in workload ticks)."""

    seed: int = 1
    #: Mean legitimate flow arrivals per tick (Poisson, or the MMPP
    #: quiet-state rate when ``burst_rate`` is set).
    arrival_rate: float = 2.0
    #: MMPP burst-state arrival rate; 0 disables the MMPP and arrivals
    #: are plain Poisson.
    burst_rate: float = 0.0
    mean_quiet_ticks: float = 512.0
    mean_burst_ticks: float = 128.0
    #: Heavy-tail flow sizes (packets).
    pareto_alpha: float = 1.2
    min_packets: int = 1
    max_packets: int = 10_000
    #: Packet skew across live flows (0 = uniform).
    zipf_s: float = 1.0
    #: Bound on concurrently live flows — and on engine memory.
    max_live: int = 100_000
    #: Destination service groups (one wildcard rule per group covers
    #: all its flows, the paper's many-flows-few-rules shape).
    groups: int = 8
    #: Duty-cycled SYN-flood windows; empty = no attack phases.
    syn_flood: Tuple[PhaseWindow, ...] = ()
    #: Mean SYN packets per tick while a flood window is active.
    syn_rate: float = 0.0
    diurnal: Optional[DiurnalCurve] = None

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.max_live < 1:
            raise ValueError("max_live must be >= 1")
        if self.groups < 1:
            raise ValueError("groups must be >= 1")
        if self.syn_rate < 0:
            raise ValueError("syn_rate must be >= 0")

    # -- scenario presets (shared by the experiment, bench, and tests) -----
    @classmethod
    def steady(cls, seed: int = 1) -> "ChurnSpec":
        """Long-lived flows, mild churn: the regime EMCs are built for."""
        return cls(seed=seed, arrival_rate=0.05, pareto_alpha=1.1,
                   min_packets=64, max_packets=50_000, zipf_s=1.1,
                   max_live=4096)

    @classmethod
    def high_churn(cls, seed: int = 1) -> "ChurnSpec":
        """Million-flow-scale churn: short flows arriving in MMPP bursts
        under Zipf skew — the EMC-thrashing regime."""
        return cls(seed=seed, arrival_rate=2.0, burst_rate=8.0,
                   mean_quiet_ticks=256.0, mean_burst_ticks=64.0,
                   pareto_alpha=1.4, min_packets=1, max_packets=512,
                   zipf_s=1.5, max_live=20_000)

    @classmethod
    def syn_flood(cls, seed: int = 1) -> "ChurnSpec":
        """High churn plus duty-cycled SYN-flood waves and a diurnal
        swing: every attack packet is a one-packet flow aimed at the
        cache."""
        return cls(seed=seed, arrival_rate=2.0, burst_rate=8.0,
                   pareto_alpha=1.3, min_packets=1, max_packets=1024,
                   zipf_s=1.4, max_live=20_000,
                   syn_flood=(PhaseWindow(start=200.0, period=400.0,
                                          duty=0.25),),
                   syn_rate=6.0,
                   diurnal=DiurnalCurve(period=5_000.0, low=0.5, high=1.5))


@dataclass
class ChurnStats:
    """Streaming counters, updated as packets are drawn."""

    packets: int = 0
    syn_packets: int = 0
    arrivals: int = 0
    departures: int = 0
    truncated_arrivals: int = 0
    peak_live: int = 0

    @property
    def syn_fraction(self) -> float:
        return self.syn_packets / self.packets if self.packets else 0.0


class ChurnEngine:
    """Streams a :class:`ChurnSpec` scenario as lazy packet iterators."""

    def __init__(self, spec: ChurnSpec) -> None:
        self.spec = spec
        self.stats = ChurnStats()
        self.now = 0.0
        self._next_id = 0
        self._next_syn = 0
        # Live flows, banded by size class (bit length of the sampled
        # flow size).  Zipf ranks run across bands from elephants down to
        # mice, so popularity is flow-intrinsic: the biggest live flows
        # are the stable hot set, one-packet mice sit in the cold tail.
        self._bands: Dict[int, List[int]] = {}
        self._live_count = 0
        self._remaining: Dict[int, int] = {}  # flow id -> packets left
        if spec.burst_rate > 0:
            self._arrivals = MmppArrivals(
                spec.arrival_rate, spec.burst_rate, spec.mean_quiet_ticks,
                spec.mean_burst_ticks, fork_rng(spec.seed, "arrivals"))
        else:
            self._arrivals = PoissonArrivals(
                spec.arrival_rate, fork_rng(spec.seed, "arrivals"))
        self._sizes = ParetoSizes(spec.pareto_alpha, spec.min_packets,
                                  spec.max_packets,
                                  fork_rng(spec.seed, "sizes"))
        self._select = ZipfSelector(spec.zipf_s, fork_rng(spec.seed, "pick"))
        self._syn = PoissonArrivals(spec.syn_rate,
                                    fork_rng(spec.seed, "syn"))

    @property
    def live_flows(self) -> int:
        return self._live_count

    def _admit_arrivals(self, multiplier: float) -> None:
        for _ in range(self._arrivals.count(multiplier)):
            size = self._sizes.sample()
            if self._live_count >= self.spec.max_live:
                self.stats.truncated_arrivals += 1
                continue
            flow_id = self._next_id
            self._next_id += 1
            self._bands.setdefault(size.bit_length(), []).append(flow_id)
            self._live_count += 1
            self._remaining[flow_id] = size
            self.stats.arrivals += 1
        if self._live_count > self.stats.peak_live:
            self.stats.peak_live = self._live_count

    def _pick_live(self) -> Tuple[int, int, int]:
        """Zipf-pick one live flow: (flow id, band key, index in band)."""
        rank = self._select.pick(self._live_count)
        for band_key in sorted(self._bands, reverse=True):
            band = self._bands[band_key]
            if rank < len(band):
                return band[rank], band_key, rank
            rank -= len(band)
        band_key = min(self._bands)
        band = self._bands[band_key]
        return band[-1], band_key, len(band) - 1

    def _syn_active(self) -> bool:
        return any(window.active(self.now)
                   for window in self.spec.syn_flood)

    def packets(self, count: int) -> Iterator[FiveTuple]:
        """Lazily generate the next ``count`` packets of the scenario."""
        spec = self.spec
        emitted = 0
        while emitted < count:
            multiplier = (spec.diurnal.multiplier(self.now)
                          if spec.diurnal else 1.0)
            self._admit_arrivals(multiplier)

            if spec.syn_rate > 0 and self._syn_active():
                for _ in range(self._syn.count(multiplier)):
                    # Each SYN is a never-repeating one-packet TCP flow
                    # aimed at the busiest service group: pure cache
                    # pollution.
                    syn_id = _ATTACK_ID_BASE + self._next_syn
                    self._next_syn += 1
                    self.stats.packets += 1
                    self.stats.syn_packets += 1
                    emitted += 1
                    yield make_flow(syn_id, proto=PROTO_TCP, group=0)
                    if emitted >= count:
                        return

            if self._live_count:
                flow_id, band_key, index = self._pick_live()
                self.stats.packets += 1
                emitted += 1
                yield make_flow(flow_id, group=flow_id % spec.groups)
                left = self._remaining[flow_id] - 1
                if left:
                    self._remaining[flow_id] = left
                else:
                    del self._remaining[flow_id]
                    band = self._bands[band_key]
                    band[index] = band[-1]   # swap-remove within the band
                    band.pop()
                    if not band:
                        del self._bands[band_key]
                    self._live_count -= 1
                    self.stats.departures += 1
            self.now += 1.0

    def keys(self, count: int) -> Iterator[bytes]:
        """The same stream as 16-byte hash-table keys."""
        for flow in self.packets(count):
            yield flow.pack()
