"""repro — a full Python reproduction of *HALO: Accelerating Flow
Classification for Scalable Packet Processing in NFV* (ISCA 2019).

Package map (see DESIGN.md for the complete inventory):

* :mod:`repro.sim` — approximate cycle-level multicore simulator
  (the gem5 substitute): DES engine, caches, NUCA LLC + CHAs, DRAM,
  OoO-core cost model.
* :mod:`repro.hashtable` — DPDK-style cuckoo hash and the SFH baseline.
* :mod:`repro.classifier` — flows, rules, EMC, tuple space search,
  OpenFlow layer, the OVS datapath.
* :mod:`repro.vswitch` — the instrumented virtual switch.
* :mod:`repro.traffic` — workload generation (the IXIA substitute).
* :mod:`repro.nf` — the six network functions of Table 3.
* :mod:`repro.tcam` — TCAM / SRAM-TCAM comparators and power models.
* :mod:`repro.core` — ★ HALO itself: per-CHA accelerators, query
  distributor, hardware lock bits, the LOOKUP_B/LOOKUP_NB/SNAPSHOT_READ
  ISA extension, the flow register, and the hybrid mode.
* :mod:`repro.analysis` — breakdowns, reporting, and one experiment
  runner per reproduced table/figure.

Quickstart::

    from repro.core import HaloSystem

    system = HaloSystem()
    table = system.create_table(capacity=65536)
    table.insert(b"0123456789abcdef", "value")
    episode = system.run_blocking_lookups(table, [b"0123456789abcdef"])
    print(episode.results[0].value, episode.cycles_per_op)
"""

__version__ = "1.0.0"

from .core.halo_system import HaloSystem  # noqa: F401  (primary entry point)

__all__ = ["HaloSystem", "__version__"]
