"""Command-line entry point: list, run, and benchmark the paper's
experiments.

Usage::

    python -m repro list
    python -m repro run fig11 [--quick]
    python -m repro run all
    python -m repro bench [--jobs N] [--only fig09,fig13] [--quick]
                          [--no-cache] [--cache-dir DIR]
                          [--json out.json] [--reports DIR]
                          [--timeout SECONDS] [--retries N]
                          [--resume] [--journal PATH]
    python -m repro bench --perf [--quick] [--perf-out DIR]
    python -m repro report [--quick] [--json metrics.json]

``run`` executes experiments serially and prints the same
paper-vs-measured report the benchmark harness archives; ``--quick``
shrinks workloads for a fast look.

``bench`` drives the full experiment registry through
:mod:`repro.runner`: independent grid points shard across ``--jobs``
worker processes, completed runs memoize in a content-addressed on-disk
cache (keyed on params + a fingerprint of the ``repro`` source, so any
code change recomputes), and ``--reports benchmarks/reports``
regenerates every archived report from one command.  ``--no-cache``
forces recomputation; ``--json`` exports run metadata, per-experiment
report digests, and the runner's own metrics registry.  ``--timeout``
kills runs that blow their wall-clock budget (``--retries`` re-runs
them a bounded number of times first); ``--resume`` replays the
campaign journal so a crashed or Ctrl-C'd invocation picks up where it
stopped.  Ctrl-C drains in-flight runs gracefully and exits 130.

``bench --perf`` runs the pinned engine-performance microbench suite
(:mod:`repro.runner.perf`) instead of the experiment registry and writes
a ``BENCH_<n>.json`` snapshot — events/sec, lookups/sec, simulated
cycles, and speedup over the frozen pre-campaign engine — so the
simulator's own speed is a tracked, regression-gated quantity.

``report`` drives a demo workload (table lookups in all three modes plus
a virtual-switch packet stream) and renders the per-component metrics
breakdown from the observability registry; ``--json`` additionally
writes the full metrics + trace-span export.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Tuple

from .runner import (
    UnknownExperimentError,
    default_jobs,
    discover,
    run_benchmarks,
    run_for_bench,
    write_reports,
)


def _registry_runner(name: str) -> Callable[[bool], str]:
    def _run(quick: bool) -> str:
        _payloads, text = run_for_bench(name, quick=quick)
        return text
    return _run


#: CLI-name → (description, callable(quick) -> report text), built from the
#: runner registry so ``run`` and ``bench`` can never drift apart.
EXPERIMENTS: Dict[str, Tuple[str, Callable[[bool], str]]] = {
    name: (spec.title, _registry_runner(name))
    for name, spec in discover().items()
}


def run_report_demo(quick: bool = False):
    """The demo workload behind ``python -m repro report``.

    Exercises every instrumented layer on one machine: software, blocking
    and non-blocking lookups against a shared table, an adaptive (hybrid)
    episode, a degraded non-blocking episode under an injected accelerator
    outage (populating the ``faults.*`` and ``exec.resilience.*``
    counters), an RSS fail/restore cycle (populating the
    ``cluster.failover.*`` counters), and a virtual-switch packet
    stream.  The standard safety
    net (:mod:`repro.guard`) rides along, so the ``guard.*`` counters
    show what the watchdog and invariant checker observed.  Returns the
    :class:`~repro.core.halo_system.HaloSystem` with its registry loaded.
    """
    from .cluster import RssBalancer
    from .core.halo_system import HaloSystem
    from .exec import ResiliencePolicy
    from .faults import FaultInjector, FaultPlan
    from .guard import attach_standard_guard
    from .traffic.generator import FlowSet, PacketStream, random_keys
    from .traffic.profiles import FIGURE3_PROFILES
    from .vswitch.switch import SwitchMode, VirtualSwitch

    lookups = 40 if quick else 200
    system = HaloSystem()
    attach_standard_guard(system)
    table = system.create_table(1 << 10, name="report_demo")
    keys = random_keys(600, seed=11)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    system.run_software_lookups(table, keys[:lookups])
    system.run_blocking_lookups(table, keys[:lookups])
    system.run_nonblocking_lookups(table, keys[lookups:2 * lookups])
    system.run_adaptive_lookups(table, keys[:lookups], window=64)

    # Degraded episode: the table's slice goes dark for a stretch; the
    # resilient non-blocking backend times out, falls back to software,
    # probes, and recovers once the outage lifts.
    outage_slice = system.hierarchy.interconnect.slice_of_table(
        table.table_addr)
    start = system.engine.now
    injector = FaultInjector(system, FaultPlan.slice_outage(
        outage_slice, start=start + 200, end=start + (2_000 if quick
                                                      else 8_000)))
    injector.install()
    backend = system.backend(
        "halo-nb",
        policy=ResiliencePolicy(poll_budget=8, max_retries=1,
                                probe_interval=8))
    system.run_program(backend.lookup_stream(table, keys[:lookups]),
                       name="degraded_stream")
    injector.uninstall()

    # Failover vignette: an RSS balancer loses a shard and re-steers its
    # indirection-table entries across the survivors, then takes it back —
    # populating the ``cluster.failover.*`` counters and the
    # ``failover.resteer`` span trees CI greps for in this report.
    balancer = RssBalancer(shards=4, table_size=32, seed=3,
                           metrics=system.obs.metrics,
                           trace=system.obs.trace)
    balancer.fail_shard(2)
    balancer.restore_shard(2)

    profile = FIGURE3_PROFILES[0]
    flow_set = FlowSet.generate(min(profile.num_flows, 2000),
                                seed=profile.seed, groups=profile.num_rules)
    switch = VirtualSwitch(system, SwitchMode.SOFTWARE,
                           megaflow_tuple_capacity=1 << 14)
    switch.install_rules(profile.build_rules(flow_set))
    switch.prewarm_megaflows(flow_set.flows)
    switch.warm()
    stream = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=5)
    switch.process_stream(stream.take(30 if quick else 120))
    return system


def _report(quick: bool, json_path=None) -> str:
    from .obs import render_component_totals

    system = run_report_demo(quick)
    sections = [
        system.report(),
        render_component_totals(system.obs.metrics.snapshot()),
        f"trace: {len(system.obs.trace)} span trees recorded "
        f"(export with --json)",
    ]
    if json_path:
        system.obs.write_json(json_path)
        sections.append(f"full metrics + spans written to {json_path}")
    return "\n\n".join(sections)


def _perf(args) -> int:
    from .runner.perf import (DEFAULT_PERF_DIR, run_perf_suite,
                              validate_snapshot, write_snapshot)

    def _progress(line: str) -> None:
        print(f"  {line}", file=sys.stderr, flush=True)

    snapshot = run_perf_suite(quick=args.quick, progress=_progress)
    problems = validate_snapshot(snapshot)
    if problems:
        for problem in problems:
            print(f"error: perf snapshot invalid: {problem}",
                  file=sys.stderr)
        return 1
    out_dir = args.perf_out or DEFAULT_PERF_DIR
    path = write_snapshot(snapshot, out_dir)
    print(f"perf snapshot written to {path}")
    for name, record in snapshot["benches"].items():
        rate = record["events_per_sec"]
        speedup = record["speedup_vs_legacy"]
        suffix = (f"  ({speedup:.2f}x vs pre-campaign engine)"
                  if speedup else "")
        print(f"  {name:20s} {rate:14,.0f} events/s{suffix}")
    return 0


def _bench(args) -> int:
    if args.perf:
        return _perf(args)
    only = [name for chunk in (args.only or [])
            for name in chunk.split(",") if name]

    def _progress(line: str) -> None:
        print(f"  {line}", file=sys.stderr, flush=True)

    try:
        summary = run_benchmarks(
            only, jobs=args.jobs, quick=args.quick,
            use_cache=not args.no_cache, cache_dir=args.cache_dir,
            progress=_progress, timeout_s=args.timeout,
            retries=args.retries, resume=args.resume,
            journal_path=args.journal)
    except UnknownExperimentError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    for report in summary.reports:
        print(report.text)
        print()
    if args.reports:
        paths = write_reports(summary, args.reports)
        print(f"archived {len(paths)} reports under {args.reports}",
              file=sys.stderr)
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(summary.to_json_dict(), handle, indent=2,
                          sort_keys=True, default=float)
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}",
                  file=sys.stderr)
            return 1
    print(summary.render_footer())
    if summary.failures:
        print(f"{len(summary.failures)} run(s) FAILED:", file=sys.stderr)
        for failure in summary.failures:
            print(f"  {failure.render()}", file=sys.stderr)
            print(failure.traceback, file=sys.stderr)
    if summary.interrupted:
        print("interrupted: completed runs are journaled; "
              "re-run with --resume to finish", file=sys.stderr)
        return 130
    return 1 if summary.failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HALO (ISCA 2019) reproduction — experiment runner")
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiment(s)")
    run_parser.add_argument("experiment",
                            choices=sorted(EXPERIMENTS) + ["all"])
    run_parser.add_argument("--quick", action="store_true",
                            help="shrink workloads for a fast look")

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the experiment registry in parallel, with caching")
    bench_parser.add_argument("--perf", action="store_true",
                              help="run the pinned engine-perf microbench "
                                   "suite and write a BENCH_<n>.json "
                                   "snapshot instead of the experiment "
                                   "registry")
    bench_parser.add_argument("--perf-out", metavar="DIR", default=None,
                              help="snapshot directory for --perf "
                                   "(default: benchmarks/perf)")
    bench_parser.add_argument("--jobs", type=int, default=default_jobs(),
                              metavar="N",
                              help="worker processes (default: CPU count)")
    bench_parser.add_argument("--only", action="append", metavar="NAMES",
                              help="comma-separated experiment names "
                                   "(repeatable); default: all")
    bench_parser.add_argument("--quick", action="store_true",
                              help="shrink workloads for a fast look")
    bench_parser.add_argument("--no-cache", action="store_true",
                              help="recompute even when cached")
    bench_parser.add_argument("--cache-dir", metavar="DIR", default=None,
                              help="result cache location (default: "
                                   "$REPRO_CACHE_DIR or "
                                   "~/.cache/repro-bench)")
    bench_parser.add_argument("--json", metavar="PATH", default=None,
                              help="write run metadata + report digests + "
                                   "runner metrics as JSON")
    bench_parser.add_argument("--reports", metavar="DIR", default=None,
                              help="archive each experiment report as "
                                   "DIR/<slug>.txt (use benchmarks/reports "
                                   "to regenerate the checked-in set)")
    bench_parser.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-run wall-clock budget; hung runs "
                                   "are killed (and retried, see "
                                   "--retries) instead of wedging the "
                                   "campaign")
    bench_parser.add_argument("--retries", type=int, default=0,
                              metavar="N",
                              help="re-run a timed-out or crashed worker "
                                   "up to N times with backoff before "
                                   "recording the failure")
    bench_parser.add_argument("--resume", action="store_true",
                              help="skip runs the campaign journal marks "
                                   "complete (after a crash or Ctrl-C)")
    bench_parser.add_argument("--journal", metavar="PATH", default=None,
                              help="campaign journal location (default: "
                                   "derived from the campaign under the "
                                   "cache dir; implies journaling)")

    report_parser = subparsers.add_parser(
        "report",
        help="demo workload + per-component metrics breakdown")
    report_parser.add_argument("--quick", action="store_true",
                               help="shrink the demo workload")
    report_parser.add_argument("--json", metavar="PATH", default=None,
                               help="also write metrics + spans as JSON")
    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        print("experiments (python -m repro run <name> [--quick] | "
              "python -m repro bench):")
        for name, (description, _func) in sorted(EXPERIMENTS.items()):
            print(f"  {name:12s} {description}")
        return 0

    if args.command == "bench":
        return _bench(args)

    if args.command == "report":
        try:
            print(_report(args.quick, args.json))
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        _description, func = EXPERIMENTS[name]
        print(func(args.quick))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
