"""Command-line entry point: list and run the paper's experiments.

Usage::

    python -m repro list
    python -m repro run fig11
    python -m repro run all
    python -m repro run fig09 --quick
    python -m repro report [--quick] [--json metrics.json]

Each experiment prints the same paper-vs-measured report the benchmark
harness archives; ``--quick`` shrinks workloads for a fast look.  The
``report`` subcommand drives a demo workload (table lookups in all three
modes plus a virtual-switch packet stream) and renders the per-component
metrics breakdown from the observability registry; ``--json`` additionally
writes the full metrics + trace-span export.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Tuple

from .analysis.experiments import (
    fig03_breakdown,
    fig04_hash,
    fig08_flow_register,
    fig09_single_lookup,
    fig10_breakdown,
    fig11_tuple_space,
    fig12_collocation,
    fig13_nf_speedup,
    keysize_sweep,
    multicore_scaling,
    sec34_concurrency,
    tab01_instructions,
    tab04_power,
    updates_comparison,
)


def _fig03(quick: bool) -> str:
    rows = fig03_breakdown.run(max_flows=10_000 if quick else 60_000,
                               packets=400 if quick else 1_500,
                               warmup=150 if quick else 500)
    return fig03_breakdown.report(rows)


def _fig04(quick: bool) -> str:
    counts = (1_000, 20_000) if quick else (1_000, 10_000, 100_000, 400_000)
    rows = fig04_hash.run(flow_counts=counts,
                          lookups=400 if quick else 1_200)
    return fig04_hash.report(rows)


def _tab01(quick: bool) -> str:
    result = tab01_instructions.run(lookups=200 if quick else 600)
    return tab01_instructions.report(result)


def _fig08(quick: bool) -> str:
    points = fig08_flow_register.run(trials=8 if quick else 25)
    return fig08_flow_register.report(points)


def _fig09(quick: bool) -> str:
    sizes = ((2 ** 3, 2 ** 9, 2 ** 15) if quick
             else fig09_single_lookup.DEFAULT_SIZES)
    size_points = fig09_single_lookup.run_size_sweep(
        sizes=sizes, lookups=120 if quick else 300)
    occupancy_points = ([] if quick
                        else fig09_single_lookup.run_occupancy_sweep())
    return fig09_single_lookup.report(size_points, occupancy_points)


def _fig10(quick: bool) -> str:
    cells = fig10_breakdown.run(table_entries=1 << 13 if quick else 1 << 16,
                                lookups=60 if quick else 200)
    return fig10_breakdown.report(cells)


def _fig11(quick: bool) -> str:
    points = fig11_tuple_space.run(packets=15 if quick else 40)
    return fig11_tuple_space.report(points)


def _fig12(quick: bool) -> str:
    results = fig12_collocation.run(
        flow_counts=(5_000,) if quick else (1_000, 50_000),
        packets=150 if quick else 400,
        warmup=150 if quick else 400,
        nf_names=("acl",) if quick else ("acl", "snort", "mtcp"))
    return fig12_collocation.report(results)


def _fig13(quick: bool) -> str:
    sizes = ({"nat": (1_000,), "prads": (1_000,), "pktfilter": (100,)}
             if quick else None)
    rows = fig13_nf_speedup.run(sizes_per_nf=sizes,
                                packets=80 if quick else 250)
    return fig13_nf_speedup.report(rows)


def _keysize(quick: bool) -> str:
    points = keysize_sweep.run(lookups=80 if quick else 200)
    return keysize_sweep.report(points)


def _multicore(quick: bool) -> str:
    points = multicore_scaling.run(
        core_counts=(1, 2, 4) if quick else (1, 2, 4, 8),
        packets_per_core=8 if quick else 20)
    return multicore_scaling.report(points)


def _sec34(quick: bool) -> str:
    result = sec34_concurrency.run(
        table_entries=1 << 12 if quick else 1 << 14,
        lookups=120 if quick else 400)
    return sec34_concurrency.report(result)


def _tab04(_quick: bool) -> str:
    return tab04_power.report(tab04_power.run())


def _updates(quick: bool) -> str:
    result = updates_comparison.run(updates=400 if quick else 2_000)
    return updates_comparison.report(result)


EXPERIMENTS: Dict[str, Tuple[str, Callable[[bool], str]]] = {
    "fig03": ("packet-processing breakdown (5 traffic configs)", _fig03),
    "fig04": ("cuckoo vs SFH cache behaviour", _fig04),
    "tab01": ("per-lookup instruction profile + locking share", _tab01),
    "fig08": ("flow-register estimation accuracy", _fig08),
    "fig09": ("single-lookup throughput sweep", _fig09),
    "fig10": ("lookup latency breakdown (LLC/DRAM)", _fig10),
    "fig11": ("tuple space search scaling", _fig11),
    "fig12": ("collocated NF interference", _fig12),
    "fig13": ("hash-table NF speedups", _fig13),
    "sec34": ("shared-table concurrency overhead", _sec34),
    "tab04": ("power and area (TCAM vs HALO)", _tab04),
    "updates": ("rule-update cost: cuckoo vs TCAM", _updates),
    "multicore": ("multi-core switch scaling, software vs HALO",
                  _multicore),
    "keysize": ("lookup cost vs header size (4-64 B)", _keysize),
}


def run_report_demo(quick: bool = False):
    """The demo workload behind ``python -m repro report``.

    Exercises every instrumented layer on one machine: software, blocking
    and non-blocking lookups against a shared table, an adaptive (hybrid)
    episode, and a virtual-switch packet stream.  Returns the
    :class:`~repro.core.halo_system.HaloSystem` with its registry loaded.
    """
    from .core.halo_system import HaloSystem
    from .traffic.generator import FlowSet, PacketStream, random_keys
    from .traffic.profiles import FIGURE3_PROFILES
    from .vswitch.switch import SwitchMode, VirtualSwitch

    lookups = 40 if quick else 200
    system = HaloSystem()
    table = system.create_table(1 << 10, name="report_demo")
    keys = random_keys(600, seed=11)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    system.run_software_lookups(table, keys[:lookups])
    system.run_blocking_lookups(table, keys[:lookups])
    system.run_nonblocking_lookups(table, keys[lookups:2 * lookups])
    system.run_adaptive_lookups(table, keys[:lookups], window=64)

    profile = FIGURE3_PROFILES[0]
    flow_set = FlowSet.generate(min(profile.num_flows, 2000),
                                seed=profile.seed, groups=profile.num_rules)
    switch = VirtualSwitch(system, SwitchMode.SOFTWARE,
                           megaflow_tuple_capacity=1 << 14)
    switch.install_rules(profile.build_rules(flow_set))
    switch.prewarm_megaflows(flow_set.flows)
    switch.warm()
    stream = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=5)
    switch.process_stream(stream.take(30 if quick else 120))
    return system


def _report(quick: bool, json_path=None) -> str:
    from .obs import render_component_totals

    system = run_report_demo(quick)
    sections = [
        system.report(),
        render_component_totals(system.obs.metrics.snapshot()),
        f"trace: {len(system.obs.trace)} query span trees recorded "
        f"(export with --json)",
    ]
    if json_path:
        system.obs.write_json(json_path)
        sections.append(f"full metrics + spans written to {json_path}")
    return "\n\n".join(sections)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="HALO (ISCA 2019) reproduction — experiment runner")
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiment(s)")
    run_parser.add_argument("experiment",
                            choices=sorted(EXPERIMENTS) + ["all"])
    run_parser.add_argument("--quick", action="store_true",
                            help="shrink workloads for a fast look")
    report_parser = subparsers.add_parser(
        "report",
        help="demo workload + per-component metrics breakdown")
    report_parser.add_argument("--quick", action="store_true",
                               help="shrink the demo workload")
    report_parser.add_argument("--json", metavar="PATH", default=None,
                               help="also write metrics + spans as JSON")
    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        print("experiments (python -m repro run <name> [--quick]):")
        for name, (description, _func) in sorted(EXPERIMENTS.items()):
            print(f"  {name:10s} {description}")
        return 0

    if args.command == "report":
        try:
            print(_report(args.quick, args.json))
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        _description, func = EXPERIMENTS[name]
        print(func(args.quick))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
