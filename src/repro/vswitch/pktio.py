"""Packet I/O cost model: DPDK poll-mode RX/TX with DDIO.

Covers the "packet IO" and "packet pre-processing" components of the
Figure 3 breakdown.  With kernel bypass and DDIO the per-packet costs are
small constants (amortised over 32-packet bursts) plus the header read the
pre-processing stage performs — which *does* go through the cache model,
since DDIO lands packet data in the LLC, not in the core's private caches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.hierarchy import MemoryHierarchy
from .packet import Packet

#: Amortised per-packet RX+TX cost of the DPDK poll-mode driver: descriptor
#: ring manipulation, mempool get/put, burst bookkeeping (paper Fig. 3's
#: "packet IO" sits around 100-150 cycles/packet).
PMD_RX_TX_CYCLES = 92
#: Header extraction / miniflow construction, excluding the header read.
PREPROCESS_CYCLES = 48
#: Per-packet residue: action execution, stats update, batching overhead
#: (Figure 3's "others").
OTHERS_CYCLES = 46


@dataclass
class PktIoStats:
    rx_packets: int = 0
    header_reads_llc: int = 0
    header_reads_dram: int = 0


class PacketIo:
    """Per-packet I/O and pre-processing cost accounting."""

    def __init__(self, hierarchy: MemoryHierarchy, core_id: int = 0,
                 ddio: bool = True) -> None:
        self.hierarchy = hierarchy
        self.core_id = core_id
        self.ddio = ddio
        self.stats = PktIoStats()

    def receive(self, packet: Packet) -> float:
        """RX-side cost for one packet (driver + descriptor work)."""
        self.stats.rx_packets += 1
        if self.ddio:
            # DDIO writes the packet into the LLC before the core polls it.
            line = self.hierarchy.line_of(packet.buffer_addr)
            slice_id = self.hierarchy.interconnect.slice_of_line(line)
            self.hierarchy.llc[slice_id].fill(line)
        return PMD_RX_TX_CYCLES

    def preprocess(self, packet: Packet) -> float:
        """Header extraction: read the header, build the miniflow key."""
        access = self.hierarchy.core_access(self.core_id, packet.header_addr)
        if access.level == "DRAM":
            self.stats.header_reads_dram += 1
        else:
            self.stats.header_reads_llc += 1
        header_stall = max(0, access.latency - self.hierarchy.latency.l1_hit)
        return PREPROCESS_CYCLES + header_stall

    def finish(self, packet: Packet) -> float:
        """Post-classification residue (actions, stats, TX enqueue)."""
        return OTHERS_CYCLES
