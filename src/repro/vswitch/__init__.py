"""The virtual switch: packets, packet I/O, and the instrumented pipeline."""

from .actions import ACTION_CYCLES, ActionExecutor, ActionOutcome, PortStats
from .packet import BUFFER_STRIDE, DEFAULT_PACKET_BYTES, Packet, PacketPool
from .pktio import OTHERS_CYCLES, PMD_RX_TX_CYCLES, PREPROCESS_CYCLES, PacketIo
from .switch import (
    PacketRecord,
    SwitchMode,
    SwitchRunStats,
    VirtualSwitch,
)

__all__ = [
    "ACTION_CYCLES",
    "ActionExecutor",
    "ActionOutcome",
    "PortStats",
    "BUFFER_STRIDE",
    "DEFAULT_PACKET_BYTES",
    "OTHERS_CYCLES",
    "PMD_RX_TX_CYCLES",
    "PREPROCESS_CYCLES",
    "Packet",
    "PacketIo",
    "PacketPool",
    "PacketRecord",
    "SwitchMode",
    "SwitchRunStats",
    "VirtualSwitch",
]
