"""Packets and packet buffers.

The virtual switch only reads headers (payload size does not affect its
performance — paper §3.1 footnote), but packets still occupy real simulated
buffer addresses so header reads exercise the cache hierarchy (and DDIO
placement) faithfully.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..classifier.flow import FiveTuple
from ..sim.memory import AddressAllocator, Region

_packet_ids = itertools.count(1)

#: 64-byte minimum Ethernet frames — the paper's IXIA configuration.
DEFAULT_PACKET_BYTES = 64
#: mbuf-style buffer stride (headroom + metadata like DPDK's rte_mbuf).
BUFFER_STRIDE = 2048


@dataclass
class Packet:
    """One packet: flow identity plus its buffer address."""

    flow: FiveTuple
    buffer_addr: int
    size_bytes: int = DEFAULT_PACKET_BYTES
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def header_addr(self) -> int:
        """Where the parsed 5-tuple key is materialised (mbuf metadata)."""
        return self.buffer_addr

    @property
    def key(self) -> bytes:
        return self.flow.pack()


class PacketPool:
    """A ring of packet buffers (an mbuf mempool).

    Buffers are recycled round-robin, so a bounded region of simulated
    memory backs an unbounded packet stream — like a real driver ring.
    """

    def __init__(self, allocator: AddressAllocator, buffers: int = 512,
                 name: str = "mbuf_pool") -> None:
        if buffers < 1:
            raise ValueError("pool needs at least one buffer")
        self.buffers = buffers
        self.region: Region = allocator.alloc(
            buffers * BUFFER_STRIDE, name)
        self._next = 0

    def wrap(self, flow: FiveTuple,
             size_bytes: int = DEFAULT_PACKET_BYTES) -> Packet:
        """Materialise a packet for ``flow`` in the next ring buffer."""
        addr = self.region.base + (self._next % self.buffers) * BUFFER_STRIDE
        self._next += 1
        return Packet(flow=flow, buffer_addr=addr, size_bytes=size_bytes)
