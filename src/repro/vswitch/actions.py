"""Action execution: what happens to a packet after classification.

The match-action pipeline's second half.  Each action has a functional
effect (forwarding, drop accounting, header rewrite) and a cycle cost, so
switch runs produce correct per-port packet counts alongside their timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..classifier.flow import FiveTuple
from ..classifier.rules import Action, ActionKind
from .packet import Packet

#: Per-action execution costs (cycles) — enqueue to a TX ring, drop
#: accounting, header rewrite + checksum fix, clone for mirroring.
ACTION_CYCLES = {
    ActionKind.OUTPUT: 24.0,
    ActionKind.DROP: 6.0,
    ActionKind.NAT: 38.0,
    ActionKind.MIRROR: 52.0,
    ActionKind.CONTROLLER: 210.0,
}


@dataclass
class PortStats:
    packets: int = 0
    bytes: int = 0


@dataclass
class ActionOutcome:
    """What executing an action did to one packet."""

    kind: ActionKind
    cycles: float
    output_port: Optional[int] = None
    rewritten_flow: Optional[FiveTuple] = None
    dropped: bool = False
    punted: bool = False


class ActionExecutor:
    """Applies classified actions, keeping per-port statistics."""

    def __init__(self, num_ports: int = 8) -> None:
        if num_ports < 1:
            raise ValueError("switch needs at least one port")
        self.num_ports = num_ports
        self.ports: Dict[int, PortStats] = {
            port: PortStats() for port in range(num_ports)}
        self.dropped = 0
        self.punted = 0
        self.mirrored = 0

    def execute(self, packet: Packet, action: Action) -> ActionOutcome:
        cycles = ACTION_CYCLES.get(action.kind, 10.0)
        if action.kind is ActionKind.OUTPUT:
            port = int(action.argument) % self.num_ports
            stats = self.ports[port]
            stats.packets += 1
            stats.bytes += packet.size_bytes
            return ActionOutcome(action.kind, cycles, output_port=port)
        if action.kind is ActionKind.DROP:
            self.dropped += 1
            return ActionOutcome(action.kind, cycles, dropped=True)
        if action.kind is ActionKind.NAT:
            rewritten = self._rewrite(packet.flow, action.argument)
            return ActionOutcome(action.kind, cycles,
                                 rewritten_flow=rewritten)
        if action.kind is ActionKind.MIRROR:
            self.mirrored += 1
            mirror_port, forward_port = self._mirror_ports(action.argument)
            for port in (mirror_port, forward_port):
                stats = self.ports[port]
                stats.packets += 1
                stats.bytes += packet.size_bytes
            return ActionOutcome(action.kind, cycles,
                                 output_port=forward_port)
        if action.kind is ActionKind.CONTROLLER:
            self.punted += 1
            return ActionOutcome(action.kind, cycles, punted=True)
        return ActionOutcome(action.kind, cycles)

    @staticmethod
    def _rewrite(flow: FiveTuple, argument) -> FiveTuple:
        """Source rewrite: (new_ip, new_port) or default masquerade."""
        if isinstance(argument, tuple) and len(argument) == 2:
            new_ip, new_port = argument
        else:
            new_ip, new_port = (203 << 24) | 1, 40_000
        return FiveTuple(src_ip=new_ip, dst_ip=flow.dst_ip,
                         src_port=new_port, dst_port=flow.dst_port,
                         proto=flow.proto)

    def _mirror_ports(self, argument) -> Tuple[int, int]:
        if isinstance(argument, tuple) and len(argument) == 2:
            mirror, forward = argument
        else:
            mirror, forward = self.num_ports - 1, 0
        return mirror % self.num_ports, forward % self.num_ports

    def port_packet_counts(self) -> List[int]:
        return [self.ports[port].packets for port in range(self.num_ports)]
