"""The virtual switch: per-packet pipeline with cycle breakdown.

Mirrors the OVS-DPDK fast path the paper profiles in §3.2 (Figure 3):

    packet IO -> pre-processing -> EMC lookup -> MegaFlow lookup -> others

Each stage's cycles are accounted separately so the Figure 3 breakdown can
be regenerated.  The classification stages run in one of three modes:

* ``SOFTWARE`` — traced table operations replayed on a simulated core
  (cuckoo hash + optimistic locking, the paper's software baseline);
* ``HALO_BLOCKING`` — classification lookups issued as ``LOOKUP_B``;
* ``HALO_NONBLOCKING`` — EMC via ``LOOKUP_B``; the MegaFlow tuple space
  searched by batching ``LOOKUP_NB`` to all tuples at once (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Generator, Iterable, List

from ..classifier.datapath import Classification, HitLayer
from ..classifier.emc import DEFAULT_EMC_ENTRIES, ExactMatchCache
from ..classifier.flow import FiveTuple
from ..classifier.openflow import OpenFlowLayer
from ..classifier.rules import Rule, megaflow_entry
from ..classifier.tuple_space import TupleSpaceSearch
from ..core.halo_system import HaloSystem
from ..core.software import SoftwareLookupEngine
from ..hashtable.locking import READ_SIDE_CYCLES
from ..sim.stats import Breakdown
from .actions import ActionExecutor
from .packet import Packet, PacketPool
from .pktio import PacketIo


class SwitchMode(Enum):
    SOFTWARE = "software"
    HALO_BLOCKING = "halo-b"
    HALO_NONBLOCKING = "halo-nb"


@dataclass
class PacketRecord:
    """Cycle accounting for one processed packet."""

    classification: Classification
    breakdown: Breakdown

    @property
    def cycles(self) -> float:
        return self.breakdown.total


@dataclass
class SwitchRunStats:
    packets: int = 0
    breakdown: Breakdown = field(default_factory=Breakdown)
    layer_hits: dict = field(default_factory=dict)

    @property
    def cycles_per_packet(self) -> float:
        return self.breakdown.total / self.packets if self.packets else 0.0

    def classification_fraction(self) -> float:
        """Share of time in flow classification (EMC + MegaFlow + OpenFlow)."""
        total = self.breakdown.total or 1.0
        classification = (self.breakdown["emc_lookup"]
                          + self.breakdown["megaflow_lookup"]
                          + self.breakdown["openflow_lookup"])
        return classification / total


class VirtualSwitch:
    """An OVS-like switch instrumented for per-stage cycle accounting."""

    def __init__(self, system: HaloSystem,
                 mode: SwitchMode = SwitchMode.SOFTWARE,
                 core_id: int = 0,
                 emc_entries: int = DEFAULT_EMC_ENTRIES,
                 megaflow_tuple_capacity: int = 4096,
                 emc_enabled: bool = True) -> None:
        self.system = system
        self.mode = mode
        self.core_id = core_id
        self.emc_enabled = emc_enabled
        allocator = system.hierarchy.allocator
        tracer = system.tracer
        self.emc = ExactMatchCache(emc_entries, allocator=allocator,
                                   tracer=tracer)
        self.megaflow = TupleSpaceSearch(
            allocator=allocator, tracer=tracer,
            tuple_capacity=megaflow_tuple_capacity, name="megaflow")
        self.openflow = OpenFlowLayer(allocator=allocator, tracer=tracer)
        self.pktio = PacketIo(system.hierarchy, core_id)
        # A burst-sized mbuf ring: headers recycle through a bounded set of
        # lines, as with a real PMD's RX burst working set.
        self.pool = PacketPool(allocator, buffers=64)
        self.software = SoftwareLookupEngine(system.hierarchy, core_id)
        self.actions = ActionExecutor()
        self.stats = SwitchRunStats()
        self.obs = system.obs
        registry = self.obs.metrics
        self._m_packets = registry.counter("vswitch.packets")
        self._m_packet_cycles = registry.histogram("vswitch.packet_cycles")
        registry.register_source("vswitch.layer_hits",
                                 lambda: dict(self.stats.layer_hits))

    # -- rule management ----------------------------------------------------------
    def install_rules(self, rules: Iterable[Rule]) -> None:
        self._rules: List[Rule] = list(rules)
        for rule in self._rules:
            self.openflow.install(rule)

    def prewarm_megaflows(self, flows: Iterable[FiveTuple]) -> int:
        """Pre-install the megaflows the given flows would create.

        Models the steady state the paper measures: the MegaFlow layer is
        populated, so the OpenFlow layer is "seldom accessed in practice"
        (§3.1).  Returns the number of megaflow entries installed.
        """
        seen = set()
        installed = 0
        for flow in flows:
            matches = [r for r in self._rules if r.matches(flow)]
            if not matches:
                continue
            best = max(matches, key=lambda r: (r.priority, -r.rule_id))
            entry = megaflow_entry(best, flow)
            signature = (entry.mask, entry.match)
            if signature in seen:
                continue
            seen.add(signature)
            if self.megaflow.install(entry):
                installed += 1
        return installed

    def warm(self) -> None:
        """Install the classification tables into the LLC (steady state)."""
        for layer_table in self._all_tables():
            layout = layer_table.layout
            self.system.hierarchy.warm_llc(layout.metadata.base,
                                           layout.metadata.size)
            self.system.hierarchy.warm_llc(layout.buckets.base,
                                           layout.buckets.size)

    def _all_tables(self):
        yield self.emc.table
        for entry in self.megaflow.tuples():
            yield entry.table
        for entry in self.openflow.tss.tuples():
            yield entry.table

    # -- software-mode stage execution -----------------------------------------------
    def _software_op(self, breakdown: Breakdown, stage: str, func,
                     *args, **kwargs):
        """Run one traced table operation, charging its cycles to a stage."""
        tracer = self.system.tracer
        tracer.begin()
        value = func(*args, **kwargs)
        result = self.software.core.execute(
            tracer.take(), lock_cycles=READ_SIDE_CYCLES)
        breakdown.add(stage, result.cycles)
        return value

    def _classify_software(self, flow: FiveTuple,
                           breakdown: Breakdown) -> Classification:
        if self.emc_enabled:
            rule = self._software_op(breakdown, "emc_lookup",
                                     self.emc.lookup, flow)
            if rule is not None:
                return Classification(flow, rule, HitLayer.EMC)

        searched = 0
        for entry in self.megaflow.tuples():
            searched += 1
            self.megaflow.stats.tuple_lookups += 1
            rule = self._software_op(breakdown, "megaflow_lookup",
                                     entry.lookup, flow)
            if rule is not None:
                self.megaflow.stats.hits += 1
                self._fill_caches(flow, rule, breakdown)
                return Classification(flow, rule, HitLayer.MEGAFLOW,
                                      tuples_searched=searched)
        self.megaflow.stats.classifications += 1

        return self._classify_openflow(flow, breakdown, searched)

    def _classify_openflow(self, flow: FiveTuple, breakdown: Breakdown,
                           searched: int) -> Classification:
        matches: List[Rule] = []
        for entry in self.openflow.tss.tuples():
            searched += 1
            rule = self._software_op(breakdown, "openflow_lookup",
                                     entry.lookup, flow)
            if rule is not None:
                matches.append(rule)
        if not matches:
            return Classification(flow, None, HitLayer.MISS,
                                  tuples_searched=searched)
        best = max(matches, key=lambda r: (r.priority, -r.rule_id))
        self._software_op(breakdown, "others", self.megaflow.install,
                          megaflow_entry(best, flow))
        self._fill_caches(flow, best, breakdown)
        return Classification(flow, best, HitLayer.OPENFLOW,
                              tuples_searched=searched)

    def _fill_caches(self, flow: FiveTuple, rule: Rule,
                     breakdown: Breakdown) -> None:
        if self.emc_enabled:
            self._software_op(breakdown, "others", self.emc.install,
                              flow, rule)

    # -- HALO-mode stage execution -------------------------------------------------------
    def _classify_halo(self, flow: FiveTuple,
                       breakdown: Breakdown) -> Classification:
        isa = self.system.isa
        engine = self.system.engine

        def program() -> Generator:
            # HALO replaces the software EMC: with accelerated tuple-space
            # search there is no cache layer to maintain from the core, so
            # the private caches stay clean (the Figure 12 property).  The
            # hybrid controller covers the tiny-flow-count regime where the
            # software EMC would win.
            queries = self.megaflow.halo_queries(flow)
            if queries:
                if self.mode is SwitchMode.HALO_NONBLOCKING:
                    pending = []
                    for table, key in queries:
                        process = yield from isa.lookup_nb(
                            self.core_id, table, key)
                        pending.append(process)
                    results = yield from isa.snapshot_read_poll(
                        self.core_id, pending)
                else:
                    results = []
                    for table, key in queries:
                        result = yield from isa.lookup_b(
                            self.core_id, table, key)
                        results.append(result)
                        if result.found:
                            break
                for index, result in enumerate(results):
                    if result.found:
                        self.megaflow.stats.hits += 1
                        return Classification(
                            flow, result.value, HitLayer.MEGAFLOW,
                            tuples_searched=index + 1)

            # OpenFlow layer: search all tuples, keep the best match.
            of_queries = self.openflow.tss.halo_queries(flow)
            matches: List[Rule] = []
            if of_queries:
                pending = []
                for table, key in of_queries:
                    process = yield from isa.lookup_nb(
                        self.core_id, table, key)
                    pending.append(process)
                results = yield from isa.snapshot_read_poll(
                    self.core_id, pending)
                matches = [r.value for r in results if r.found]
            if not matches:
                return Classification(flow, None, HitLayer.MISS)
            best = max(matches, key=lambda r: (r.priority, -r.rule_id))
            self.megaflow.install(megaflow_entry(best, flow))
            return Classification(flow, best, HitLayer.OPENFLOW)

        start = engine.now
        classification = engine.run_process(program(), name="halo_classify")
        elapsed = engine.now - start
        stage = ("emc_lookup" if classification.layer is HitLayer.EMC
                 else "megaflow_lookup"
                 if classification.layer is HitLayer.MEGAFLOW
                 else "openflow_lookup")
        breakdown.add(stage, elapsed)
        return classification

    # -- the per-packet pipeline --------------------------------------------------------
    def process_flow(self, flow: FiveTuple) -> PacketRecord:
        """Process one packet carrying ``flow`` through the full pipeline."""
        packet = self.pool.wrap(flow)
        breakdown = Breakdown()
        breakdown.add("packet_io", self.pktio.receive(packet))
        breakdown.add("preprocess", self.pktio.preprocess(packet))
        if self.mode is SwitchMode.SOFTWARE:
            classification = self._classify_software(flow, breakdown)
        else:
            classification = self._classify_halo(flow, breakdown)
        if classification.hit:
            outcome = self.actions.execute(packet, classification.rule.action)
            breakdown.add("others", outcome.cycles)
        breakdown.add("others", self.pktio.finish(packet))

        self.stats.packets += 1
        self.stats.breakdown = self.stats.breakdown.merged(breakdown)
        layer = classification.layer.value
        self.stats.layer_hits[layer] = self.stats.layer_hits.get(layer, 0) + 1
        self._m_packets.inc()
        self._m_packet_cycles.observe(breakdown.total)
        if self.obs.enabled:
            # Per-stage latency histograms, keyed by the Figure 3 stage
            # names (packet_io / preprocess / emc_lookup / ...).
            registry = self.obs.metrics
            for stage, cycles in breakdown:
                registry.histogram(f"vswitch.stage.{stage}_cycles").observe(
                    cycles)
        return PacketRecord(classification=classification,
                            breakdown=breakdown)

    def process_stream(self, flows: Iterable[FiveTuple]) -> SwitchRunStats:
        for flow in flows:
            self.process_flow(flow)
        return self.stats
