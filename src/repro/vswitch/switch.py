"""The virtual switch: per-packet pipeline with cycle breakdown.

Mirrors the OVS-DPDK fast path the paper profiles in §3.2 (Figure 3):

    packet IO -> pre-processing -> EMC lookup -> MegaFlow lookup -> others

Each stage's cycles are accounted separately so the Figure 3 breakdown can
be regenerated.  The classification stages run in one of three modes:

* ``SOFTWARE`` — traced table operations replayed on a simulated core
  (cuckoo hash + optimistic locking, the paper's software baseline);
* ``HALO_BLOCKING`` — classification lookups issued as ``LOOKUP_B``;
* ``HALO_NONBLOCKING`` — the MegaFlow tuple space searched by batching
  ``LOOKUP_NB`` to all tuples at once (§5.1).

Every mode is a :mod:`repro.exec` lookup backend, and the whole pipeline
is a DES *program* (:meth:`VirtualSwitch.packet_program` /
:meth:`pmd_program`): software classification spends its cycles as engine
time exactly like the HALO paths, so a switch PMD loop can be pinned to a
core with :func:`repro.exec.cores.run_cores` and collocate with NFs or
other switches on the shared memory hierarchy.  The synchronous
:meth:`process_flow` wrapper remains the single-core entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Generator, Iterable, List, Optional, Union

from ..classifier.cache_policy import CachePolicy
from ..classifier.datapath import Classification, HitLayer
from ..classifier.emc import DEFAULT_EMC_ENTRIES, ExactMatchCache
from ..classifier.flow import FiveTuple
from ..classifier.openflow import OpenFlowLayer
from ..classifier.rules import Rule, megaflow_entry
from ..classifier.tuple_space import TupleSpaceSearch
from ..core.halo_system import HaloSystem
from ..exec.backend import HaloNonblockingBackend, SoftwareBackend
from ..hashtable.locking import READ_SIDE_CYCLES
from ..sim.stats import Breakdown
from .actions import ActionExecutor
from .packet import Packet, PacketPool
from .pktio import PacketIo


class SwitchMode(Enum):
    SOFTWARE = "software"
    HALO_BLOCKING = "halo-b"
    HALO_NONBLOCKING = "halo-nb"


@dataclass
class PacketRecord:
    """Cycle accounting for one processed packet."""

    classification: Classification
    breakdown: Breakdown

    @property
    def cycles(self) -> float:
        return self.breakdown.total


@dataclass
class SwitchRunStats:
    packets: int = 0
    breakdown: Breakdown = field(default_factory=Breakdown)
    layer_hits: dict = field(default_factory=dict)

    @property
    def cycles_per_packet(self) -> float:
        return self.breakdown.total / self.packets if self.packets else 0.0

    def classification_fraction(self) -> float:
        """Share of time in flow classification (EMC + MegaFlow + OpenFlow)."""
        total = self.breakdown.total or 1.0
        classification = (self.breakdown["emc_lookup"]
                          + self.breakdown["megaflow_lookup"]
                          + self.breakdown["openflow_lookup"])
        return classification / total


class VirtualSwitch:
    """An OVS-like switch instrumented for per-stage cycle accounting."""

    def __init__(self, system: HaloSystem,
                 mode: SwitchMode = SwitchMode.SOFTWARE,
                 core_id: int = 0,
                 emc_entries: int = DEFAULT_EMC_ENTRIES,
                 megaflow_tuple_capacity: int = 4096,
                 emc_enabled: bool = True,
                 emc_policy: Union[str, CachePolicy, None] = None,
                 megaflow_policy: Optional[CachePolicy] = None) -> None:
        self.system = system
        self.mode = mode
        self.core_id = core_id
        self.emc_enabled = emc_enabled
        self._rules: List[Rule] = []
        allocator = system.hierarchy.allocator
        tracer = system.tracer
        metrics = system.obs.metrics  # null objects when obs is disabled
        self.emc = ExactMatchCache(emc_entries, allocator=allocator,
                                   tracer=tracer, policy=emc_policy,
                                   metrics=metrics)
        self.megaflow = TupleSpaceSearch(
            allocator=allocator, tracer=tracer,
            tuple_capacity=megaflow_tuple_capacity, name="megaflow",
            policy=megaflow_policy, metrics=metrics)
        self.openflow = OpenFlowLayer(allocator=allocator, tracer=tracer)
        self.pktio = PacketIo(system.hierarchy, core_id)
        # A burst-sized mbuf ring: headers recycle through a bounded set of
        # lines, as with a real PMD's RX burst working set.
        self.pool = PacketPool(allocator, buffers=64)
        self.backend = system.backend(mode.value, core_id=core_id)
        # The OpenFlow slow path always fans out with LOOKUP_NB batches,
        # even in blocking mode (it searches every tuple anyway).
        if isinstance(self.backend, HaloNonblockingBackend):
            self._nb = self.backend
        elif mode is not SwitchMode.SOFTWARE:
            self._nb = HaloNonblockingBackend(system, core_id)
        else:
            self._nb = None
        if isinstance(self.backend, SoftwareBackend):
            self._software_backend = self.backend
        else:
            self._software_backend = SoftwareBackend(system, core_id)
        self.software = self._software_backend.software
        self.actions = ActionExecutor()
        self.stats = SwitchRunStats()
        self.obs = system.obs
        registry = self.obs.metrics
        self._m_packets = registry.counter("vswitch.packets")
        self._m_packet_cycles = registry.histogram("vswitch.packet_cycles")
        registry.register_source("vswitch.layer_hits",
                                 lambda: dict(self.stats.layer_hits))

    # -- rule management ----------------------------------------------------------
    def install_rules(self, rules: Iterable[Rule]) -> None:
        self._rules = list(rules)
        for rule in self._rules:
            self.openflow.install(rule)

    def prewarm_megaflows(self, flows: Iterable[FiveTuple]) -> int:
        """Pre-install the megaflows the given flows would create.

        Models the steady state the paper measures: the MegaFlow layer is
        populated, so the OpenFlow layer is "seldom accessed in practice"
        (§3.1).  Returns the number of megaflow entries installed.
        """
        seen = set()
        installed = 0
        for flow in flows:
            matches = [r for r in self._rules if r.matches(flow)]
            if not matches:
                continue
            best = max(matches, key=lambda r: (r.priority, -r.rule_id))
            entry = megaflow_entry(best, flow)
            signature = (entry.mask, entry.match)
            if signature in seen:
                continue
            seen.add(signature)
            if self.megaflow.install(entry):
                installed += 1
        return installed

    def warm(self) -> None:
        """Install the classification tables into the LLC (steady state)."""
        for layer_table in self._all_tables():
            layout = layer_table.layout
            self.system.hierarchy.warm_llc(layout.metadata.base,
                                           layout.metadata.size)
            self.system.hierarchy.warm_llc(layout.buckets.base,
                                           layout.buckets.size)

    def _all_tables(self):
        yield self.emc.table
        for entry in self.megaflow.tuples():
            yield entry.table
        for entry in self.openflow.tss.tuples():
            yield entry.table

    # -- software-mode stage execution -----------------------------------------------
    def _traced_op(self, breakdown: Breakdown, stage: str, func,
                   *args, **kwargs) -> Generator:
        """Program: one traced table operation charged to a stage."""
        value, result = yield from self._software_backend.traced_call(
            func, *args, lock_cycles=READ_SIDE_CYCLES, **kwargs)
        breakdown.add(stage, result.cycles)
        return value

    def _classify_software(self, flow: FiveTuple,
                           breakdown: Breakdown) -> Generator:
        if self.emc_enabled:
            rule = yield from self._traced_op(breakdown, "emc_lookup",
                                              self.emc.lookup, flow)
            if rule is not None:
                return Classification(flow, rule, HitLayer.EMC)

        searched = 0
        for entry in self.megaflow.tuples():
            searched += 1
            self.megaflow.stats.tuple_lookups += 1
            rule = yield from self._traced_op(breakdown, "megaflow_lookup",
                                              entry.lookup, flow)
            if rule is not None:
                self.megaflow.stats.hits += 1
                if self.megaflow.policy is not None:
                    self.megaflow.policy.on_hit(entry.mask.key_of(flow))
                yield from self._fill_caches(flow, rule, breakdown)
                return Classification(flow, rule, HitLayer.MEGAFLOW,
                                      tuples_searched=searched)
        self.megaflow.stats.classifications += 1

        return (yield from self._classify_openflow(flow, breakdown, searched))

    def _classify_openflow(self, flow: FiveTuple, breakdown: Breakdown,
                           searched: int) -> Generator:
        matches: List[Rule] = []
        for entry in self.openflow.tss.tuples():
            searched += 1
            rule = yield from self._traced_op(breakdown, "openflow_lookup",
                                              entry.lookup, flow)
            if rule is not None:
                matches.append(rule)
        if not matches:
            return Classification(flow, None, HitLayer.MISS,
                                  tuples_searched=searched)
        best = max(matches, key=lambda r: (r.priority, -r.rule_id))
        yield from self._traced_op(breakdown, "others", self.megaflow.install,
                                   megaflow_entry(best, flow))
        yield from self._fill_caches(flow, best, breakdown)
        return Classification(flow, best, HitLayer.OPENFLOW,
                              tuples_searched=searched)

    def _fill_caches(self, flow: FiveTuple, rule: Rule,
                     breakdown: Breakdown) -> Generator:
        if self.emc_enabled:
            yield from self._traced_op(breakdown, "others", self.emc.install,
                                       flow, rule)

    # -- HALO-mode stage execution -------------------------------------------------------
    def _classify_halo(self, flow: FiveTuple,
                       breakdown: Breakdown) -> Generator:
        # HALO replaces the software EMC: with accelerated tuple-space
        # search there is no cache layer to maintain from the core, so
        # the private caches stay clean (the Figure 12 property).  The
        # hybrid controller covers the tiny-flow-count regime where the
        # software EMC would win.
        engine = self.system.engine
        queries = self.megaflow.halo_queries(flow)
        if queries:
            start = engine.now
            outcomes = yield from self.backend.search(
                queries, first_match=self.mode is SwitchMode.HALO_BLOCKING)
            # Each layer's search is booked to its own stage, even when the
            # packet falls through to the next layer.
            breakdown.add("megaflow_lookup", engine.now - start)
            for index, outcome in enumerate(outcomes):
                if outcome.found:
                    self.megaflow.stats.hits += 1
                    return Classification(
                        flow, outcome.value, HitLayer.MEGAFLOW,
                        tuples_searched=index + 1)

        # OpenFlow layer: search all tuples, keep the best match.
        of_queries = self.openflow.tss.halo_queries(flow)
        matches: List[Rule] = []
        if of_queries:
            start = engine.now
            outcomes = yield from self._nb.search(of_queries)
            breakdown.add("openflow_lookup", engine.now - start)
            matches = [o.value for o in outcomes if o.found]
        if not matches:
            return Classification(flow, None, HitLayer.MISS)
        best = max(matches, key=lambda r: (r.priority, -r.rule_id))
        self.megaflow.install(megaflow_entry(best, flow))
        return Classification(flow, best, HitLayer.OPENFLOW)

    # -- the per-packet pipeline --------------------------------------------------------
    def classify_program(self, flow: FiveTuple,
                         breakdown: Breakdown) -> Generator:
        """Program: classify one flow, charging stages into ``breakdown``."""
        if self.backend.replaces_emc:
            return (yield from self._classify_halo(flow, breakdown))
        return (yield from self._classify_software(flow, breakdown))

    def packet_program(self, flow: FiveTuple) -> Generator:
        """The full per-packet pipeline as a DES program.

        Fixed-cost stages (packet IO, pre-processing, actions) spend their
        cycles as engine timeouts, and classification runs through the
        mode's backend — so concurrent switch/NF programs interleave on
        the engine with honest relative timing.  Returns the
        :class:`PacketRecord`.
        """
        engine = self.system.engine
        packet = self.pool.wrap(flow)
        breakdown = Breakdown()
        for stage, cycles in (("packet_io", self.pktio.receive(packet)),
                              ("preprocess", self.pktio.preprocess(packet))):
            breakdown.add(stage, cycles)
            if cycles:
                yield engine.timeout(cycles)
        classification = yield from self.classify_program(flow, breakdown)
        if classification.hit:
            outcome = self.actions.execute(packet, classification.rule.action)
            breakdown.add("others", outcome.cycles)
            if outcome.cycles:
                yield engine.timeout(outcome.cycles)
        finish = self.pktio.finish(packet)
        breakdown.add("others", finish)
        if finish:
            yield engine.timeout(finish)

        self._record(classification, breakdown)
        return PacketRecord(classification=classification,
                            breakdown=breakdown)

    def pmd_program(self, flows: Iterable[FiveTuple]) -> Generator:
        """Program: a PMD loop over a packet stream (for ``run_cores``)."""
        records = []
        for flow in flows:
            record = yield from self.packet_program(flow)
            records.append(record)
        return records

    def _record(self, classification: Classification,
                breakdown: Breakdown) -> None:
        self.stats.packets += 1
        self.stats.breakdown = self.stats.breakdown.merged(breakdown)
        layer = classification.layer.value
        self.stats.layer_hits[layer] = self.stats.layer_hits.get(layer, 0) + 1
        self._m_packets.inc()
        self._m_packet_cycles.observe(breakdown.total)
        if self.obs.enabled:
            # Per-stage latency histograms, keyed by the Figure 3 stage
            # names (packet_io / preprocess / emc_lookup / ...).
            registry = self.obs.metrics
            for stage, cycles in breakdown:
                registry.histogram(f"vswitch.stage.{stage}_cycles").observe(
                    cycles)

    def process_flow(self, flow: FiveTuple) -> PacketRecord:
        """Process one packet synchronously (drives the engine internally)."""
        return self.system.engine.run_process(self.packet_program(flow),
                                              name="packet")

    def process_stream(self, flows: Iterable[FiveTuple]) -> SwitchRunStats:
        for flow in flows:
            self.process_flow(flow)
        return self.stats
